// Memory access primitives shared by every device model.
//
// All memory traffic in ACES flows through MemResult-returning accessors so
// that timing (cycles), modeled hardware faults (bus errors, MPU violations)
// and soft-error effects (detected parity hits, silent corruption) are
// explicit values, never C++ exceptions.
#ifndef ACES_MEM_DEVICE_H
#define ACES_MEM_DEVICE_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace aces::mem {

enum class Access : std::uint8_t {
  read,   // data load
  write,  // data store
  fetch,  // instruction fetch
};

[[nodiscard]] constexpr std::string_view access_name(Access a) {
  switch (a) {
    case Access::read: return "read";
    case Access::write: return "write";
    case Access::fetch: return "fetch";
  }
  return "?";
}

enum class Fault : std::uint8_t {
  none,
  unmapped,        // no device at this address
  misaligned,      // access crosses a device boundary or violates alignment
  readonly,        // write to a read-only device (e.g. flash at runtime)
  mpu_violation,   // blocked by the memory protection unit
  parity,          // detected-but-unrecovered soft error (FT data aborts)
};

[[nodiscard]] constexpr std::string_view fault_name(Fault f) {
  switch (f) {
    case Fault::none: return "none";
    case Fault::unmapped: return "unmapped";
    case Fault::misaligned: return "misaligned";
    case Fault::readonly: return "readonly";
    case Fault::mpu_violation: return "mpu-violation";
    case Fault::parity: return "parity";
  }
  return "?";
}

// Result of one memory transaction.
struct MemResult {
  std::uint32_t value = 0;    // data for reads/fetches
  std::uint32_t cycles = 1;   // bus cycles consumed
  Fault fault = Fault::none;
  // A soft error was detected and transparently corrected/recovered
  // (TCM hold-and-repair, I-cache invalidate-and-refill). Cycles already
  // include the recovery penalty.
  bool soft_error_recovered = false;
  // The returned value is corrupted and nothing detected it (fault-tolerance
  // disabled). Tests use this to prove the FT machinery is load-bearing;
  // real software would simply consume the bad value.
  bool silently_corrupt = false;

  [[nodiscard]] bool ok() const { return fault == Fault::none; }
};

// A window of raw host storage backing a RAM-like device: a fixed cycle
// cost per access, no access side effects, and contents that change only
// through writes. Devices that can honor that contract (plain SRAM) expose
// a span so hot CPU paths can bypass virtual dispatch entirely; devices
// with dynamic timing or access side effects (the flash prefetch streamer,
// caches, fault-tolerant TCM) must decline.
struct DirectSpan {
  std::uint8_t* data = nullptr;   // host storage for guest address `base`
  std::uint32_t base = 0;         // guest base address of the span
  std::uint32_t size = 0;         // bytes covered (0: no span)
  std::uint32_t read_cycles = 1;  // fixed cost of one read, any size
  std::uint32_t write_cycles = 1;
  bool writable = false;
};

// Abstract memory-mapped device. Addresses are device-relative; `size` is
// 1, 2 or 4 and accesses are naturally aligned (the Bus enforces this).
// `now` is the core's current cycle count, used by devices with background
// activity (the flash prefetch streamer).
class Device {
 public:
  virtual ~Device() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::uint32_t size_bytes() const = 0;

  [[nodiscard]] virtual MemResult read(std::uint32_t addr, unsigned size,
                                       Access kind, std::uint64_t now) = 0;
  [[nodiscard]] virtual MemResult write(std::uint32_t addr, unsigned size,
                                        std::uint32_t value,
                                        std::uint64_t now) = 0;

  // Loader/debugger backdoor: stores one byte with no timing or protection
  // side effects (how a programmer writes flash before the system runs).
  // Returns false for devices without backing storage (aliases, peripherals
  // that reject it).
  virtual bool program(std::uint32_t addr, std::uint8_t byte) {
    (void)addr;
    (void)byte;
    return false;
  }

  // Fast-path opt-in: fills `out` (with `base` left device-relative 0; the
  // bus rebases it) when the device honors the DirectSpan contract above.
  // Default: decline.
  virtual bool direct_span(DirectSpan* out) {
    (void)out;
    return false;
  }

  // If the cycle cost of an instruction fetch of `size` bytes at the
  // device-relative address is provably independent of device state (and
  // the fetch has no state the rest of the model can observe through
  // cycles), returns that cost; the core may then charge it for cached
  // instructions without performing the access. Devices with history-
  // dependent fetch timing must decline. Default: decline.
  [[nodiscard]] virtual std::optional<std::uint32_t> fixed_fetch_cost(
      std::uint32_t addr, unsigned size) const {
    (void)addr;
    (void)size;
    return std::nullopt;
  }
};

}  // namespace aces::mem

#endif  // ACES_MEM_DEVICE_H
