#include "mem/bus.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "support/check.h"

namespace aces::mem {

namespace {

[[nodiscard]] std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace

void Bus::attach(std::uint32_t base, Device& dev) {
  const std::uint32_t limit = base + dev.size_bytes();
  ACES_CHECK_MSG(limit > base, "device '" + std::string(dev.name()) +
                                   "' wraps the address space at " +
                                   hex(base));
  // Insert keeping map_ sorted by base; the neighbors are the only possible
  // overlaps.
  const auto pos = std::upper_bound(
      map_.begin(), map_.end(), base,
      [](std::uint32_t b, const Mapping& m) { return b < m.base; });
  if (pos != map_.begin()) {
    const Mapping& prev = *std::prev(pos);
    ACES_CHECK_MSG(base >= prev.limit,
                   "bus mapping '" + std::string(dev.name()) + "' [" +
                       hex(base) + ", " + hex(limit) + ") overlaps '" +
                       std::string(prev.dev->name()) + "' [" + hex(prev.base) +
                       ", " + hex(prev.limit) + ")");
  }
  if (pos != map_.end()) {
    ACES_CHECK_MSG(limit <= pos->base,
                   "bus mapping '" + std::string(dev.name()) + "' [" +
                       hex(base) + ", " + hex(limit) + ") overlaps '" +
                       std::string(pos->dev->name()) + "' [" + hex(pos->base) +
                       ", " + hex(pos->limit) + ")");
  }
  map_.insert(pos, Mapping{base, limit, &dev});
  mru_.fill(Mru{});  // defensive: route the next access of each kind fresh
}

Device* Bus::device_at(std::uint32_t addr, std::uint32_t* offset) {
  // map_ is sorted by base and regions are disjoint: the candidate is the
  // last mapping whose base is <= addr.
  const auto pos = std::upper_bound(
      map_.begin(), map_.end(), addr,
      [](std::uint32_t a, const Mapping& m) { return a < m.base; });
  if (pos == map_.begin()) {
    return nullptr;
  }
  const Mapping& m = *std::prev(pos);
  if (addr >= m.limit) {
    return nullptr;
  }
  if (offset != nullptr) {
    *offset = addr - m.base;
  }
  return m.dev;
}

namespace {

[[nodiscard]] bool aligned(std::uint32_t addr, unsigned size) {
  return (size == 1 || size == 2 || size == 4) && addr % size == 0;
}

[[nodiscard]] MemResult fault_result(Fault f) {
  MemResult r;
  r.fault = f;
  return r;
}

}  // namespace

Device* Bus::route(std::uint32_t addr, unsigned size, Mru& memo,
                   std::uint32_t* offset, Fault* fault) {
  if (addr >= memo.base && addr < memo.limit && size <= memo.limit - addr) {
    *offset = addr - memo.base;
    return memo.dev;
  }
  Device* dev = device_at(addr, offset);
  if (dev == nullptr) {
    *fault = Fault::unmapped;
    return nullptr;
  }
  if (*offset + size > dev->size_bytes()) {
    *fault = Fault::misaligned;  // straddles the end of the device
    return nullptr;
  }
  memo = Mru{addr - *offset, addr - *offset + dev->size_bytes(), dev};
  return dev;
}

MemResult Bus::read(std::uint32_t addr, unsigned size, Access kind,
                    std::uint64_t now) {
  if (!aligned(addr, size)) {
    return fault_result(Fault::misaligned);
  }
  std::uint32_t offset = 0;
  Fault fault = Fault::none;
  Device* dev =
      route(addr, size, mru_[static_cast<unsigned>(kind)], &offset, &fault);
  if (dev == nullptr) {
    return fault_result(fault);
  }
  return dev->read(offset, size, kind, now);
}

MemResult Bus::write(std::uint32_t addr, unsigned size, std::uint32_t value,
                     std::uint64_t now) {
  if (!aligned(addr, size)) {
    return fault_result(Fault::misaligned);
  }
  std::uint32_t offset = 0;
  Fault fault = Fault::none;
  Device* dev = route(addr, size, mru_[static_cast<unsigned>(Access::write)],
                      &offset, &fault);
  if (dev == nullptr) {
    return fault_result(fault);
  }
  const MemResult r = dev->write(offset, size, value, now);
  if (r.ok()) {
    notify_snoop(addr, size);
  }
  return r;
}

bool Bus::load_image(std::uint32_t addr, const std::uint8_t* data,
                     std::uint32_t len) {
  for (std::uint32_t k = 0; k < len; ++k) {
    std::uint32_t offset = 0;
    Device* dev = device_at(addr + k, &offset);
    if (dev == nullptr) {
      notify_snoop(addr, k);  // partially programmed before the failure
      return false;
    }
    if (!dev->program(offset, data[k])) {
      notify_snoop(addr, k);
      return false;
    }
  }
  notify_snoop(addr, len);
  return true;
}

std::optional<std::uint32_t> Bus::fixed_fetch_cost(std::uint32_t addr,
                                                   unsigned size) {
  std::uint32_t offset = 0;
  Device* dev = device_at(addr, &offset);
  if (dev == nullptr || offset + size > dev->size_bytes()) {
    return std::nullopt;
  }
  return dev->fixed_fetch_cost(offset, size);
}

bool Bus::direct_span(std::uint32_t addr, DirectSpan* out) {
  *out = DirectSpan{};
  std::uint32_t offset = 0;
  Device* dev = device_at(addr, &offset);
  if (dev == nullptr) {
    return false;  // size stays 0: not even negative-cacheable
  }
  const std::uint32_t base = addr - offset;
  if (!dev->direct_span(out)) {
    out->data = nullptr;
    out->base = base;
    out->size = dev->size_bytes();
    return false;
  }
  out->base = base;
  return true;
}

}  // namespace aces::mem
