#include "mem/bus.h"

#include <algorithm>

#include "support/check.h"

namespace aces::mem {

void Bus::attach(std::uint32_t base, Device& dev) {
  const std::uint32_t limit = base + dev.size_bytes();
  ACES_CHECK_MSG(limit > base, "device wraps the address space");
  for (const Mapping& m : map_) {
    ACES_CHECK_MSG(limit <= m.base || base >= m.limit,
                   "overlapping bus mapping for " + std::string(dev.name()));
  }
  map_.push_back(Mapping{base, limit, &dev});
  std::sort(map_.begin(), map_.end(),
            [](const Mapping& a, const Mapping& b) { return a.base < b.base; });
}

Device* Bus::device_at(std::uint32_t addr, std::uint32_t* offset) {
  for (const Mapping& m : map_) {
    if (addr >= m.base && addr < m.limit) {
      if (offset != nullptr) {
        *offset = addr - m.base;
      }
      return m.dev;
    }
  }
  return nullptr;
}

namespace {

[[nodiscard]] bool aligned(std::uint32_t addr, unsigned size) {
  return (size == 1 || size == 2 || size == 4) && addr % size == 0;
}

[[nodiscard]] MemResult fault_result(Fault f) {
  MemResult r;
  r.fault = f;
  return r;
}

}  // namespace

MemResult Bus::read(std::uint32_t addr, unsigned size, Access kind,
                    std::uint64_t now) {
  if (!aligned(addr, size)) {
    return fault_result(Fault::misaligned);
  }
  std::uint32_t offset = 0;
  Device* dev = device_at(addr, &offset);
  if (dev == nullptr) {
    return fault_result(Fault::unmapped);
  }
  if (offset + size > dev->size_bytes()) {
    return fault_result(Fault::misaligned);
  }
  return dev->read(offset, size, kind, now);
}

MemResult Bus::write(std::uint32_t addr, unsigned size, std::uint32_t value,
                     std::uint64_t now) {
  if (!aligned(addr, size)) {
    return fault_result(Fault::misaligned);
  }
  std::uint32_t offset = 0;
  Device* dev = device_at(addr, &offset);
  if (dev == nullptr) {
    return fault_result(Fault::unmapped);
  }
  if (offset + size > dev->size_bytes()) {
    return fault_result(Fault::misaligned);
  }
  return dev->write(offset, size, value, now);
}

bool Bus::load_image(std::uint32_t addr, const std::uint8_t* data,
                     std::uint32_t len) {
  for (std::uint32_t k = 0; k < len; ++k) {
    std::uint32_t offset = 0;
    Device* dev = device_at(addr + k, &offset);
    if (dev == nullptr) {
      return false;
    }
    if (!dev->program(offset, data[k])) {
      return false;
    }
  }
  return true;
}

}  // namespace aces::mem
