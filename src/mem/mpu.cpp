#include "mem/mpu.h"

#include "support/bits.h"
#include "support/check.h"

namespace aces::mem {

Mpu::Mpu(MpuConfig config) : config_(config) {
  ACES_CHECK(support::is_power_of_two(config_.granularity));
  ACES_CHECK(config_.max_regions >= 1 && config_.max_regions <= 16);
}

void Mpu::set_region(unsigned index, const MpuRegion& region) {
  ACES_CHECK_MSG(index < config_.max_regions, "MPU region index out of range");
  ACES_CHECK_MSG(region.size > 0, "use clear_region() to disable a region");
  ACES_CHECK_MSG(region.size % config_.granularity == 0,
                 "region size violates MPU granularity");
  if (config_.power_of_two_sizes) {
    ACES_CHECK_MSG(support::is_power_of_two(region.size),
                   "classic MPU requires power-of-two region sizes");
    ACES_CHECK_MSG(region.base % region.size == 0,
                   "classic MPU requires base aligned to region size");
  } else {
    ACES_CHECK_MSG(region.base % config_.granularity == 0,
                   "region base violates MPU granularity");
  }
  regions_[index] = region;
  ++version_;
}

void Mpu::clear_region(unsigned index) {
  ACES_CHECK(index < config_.max_regions);
  regions_[index] = MpuRegion{};
  ++version_;
}

void Mpu::clear_all() {
  for (auto& r : regions_) {
    r = MpuRegion{};
  }
  ++version_;
}

std::uint32_t Mpu::smallest_region_span(std::uint32_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  std::uint32_t span = static_cast<std::uint32_t>(
      support::align_up(bytes, config_.granularity));
  if (config_.power_of_two_sizes) {
    std::uint32_t p = config_.granularity;
    while (p < span) {
      p <<= 1;
    }
    span = p;
  }
  return span;
}

Fault Mpu::check(std::uint32_t addr, unsigned size, Access kind,
                 bool privileged) const {
  ++stats_.checks;
  // Highest-numbered matching region decides (ARM priority semantics).
  for (int k = static_cast<int>(config_.max_regions) - 1; k >= 0; --k) {
    const MpuRegion& r = regions_[static_cast<unsigned>(k)];
    if (r.size == 0) {
      continue;
    }
    const std::uint64_t end = static_cast<std::uint64_t>(addr) + size;
    if (addr < r.base || end > static_cast<std::uint64_t>(r.base) + r.size) {
      continue;
    }
    // A matching region decides outright; the background rule only applies
    // when no region matches (ARM semantics).
    const bool allowed = !(r.privileged_only && !privileged) &&
                         ((kind == Access::read && r.read) ||
                          (kind == Access::write && r.write) ||
                          (kind == Access::fetch && r.execute));
    if (allowed) {
      return Fault::none;
    }
    ++stats_.violations;
    return Fault::mpu_violation;
  }
  if (privileged && config_.privileged_background) {
    return Fault::none;
  }
  ++stats_.violations;
  return Fault::mpu_violation;
}

}  // namespace aces::mem
