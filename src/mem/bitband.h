// Bit-band alias region (§3.2.3).
//
// Maps each bit of a target region to one word of alias space:
//   alias_word(byte_offset, bit) = byte_offset * 32 + bit * 4
// A word store to the alias performs an ATOMIC bit set/clear at the target
// (value bit 0 selects set/clear); a word load returns 0 or 1. What was a
// disable-interrupts / read / mask / write / enable sequence becomes one
// single-cycle store — bench_fig5_bitband measures exactly this gap.
//
// The alias device sits on the bus like any other device and forwards to
// the target device; the read-modify-write happens inside one bus
// transaction, which is what makes it atomic with respect to interrupts.
#ifndef ACES_MEM_BITBAND_H
#define ACES_MEM_BITBAND_H

#include "mem/device.h"

#include "support/check.h"

namespace aces::mem {

class BitBandAlias final : public Device {
 public:
  // Aliases the first `target_bytes` of `target` (1 MB of target maps to
  // 8 MB... i.e. 32x expansion, so keep target_bytes modest).
  BitBandAlias(Device& target, std::uint32_t target_bytes)
      : target_(target), target_bytes_(target_bytes) {
    ACES_CHECK_MSG(target_bytes <= target.size_bytes(),
                   "bit-band target window exceeds device");
    ACES_CHECK_MSG(target_bytes <= (0xFFFFFFFFu / 32u),
                   "bit-band alias would wrap");
  }

  [[nodiscard]] std::string_view name() const override { return "bitband"; }
  [[nodiscard]] std::uint32_t size_bytes() const override {
    return target_bytes_ * 32u;
  }

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now) override {
    if (size != 4 || kind == Access::fetch) {
      MemResult r;
      r.fault = Fault::misaligned;
      return r;
    }
    const std::uint32_t byte = addr / 32u;
    const unsigned bit = (addr / 4u) % 8u;
    MemResult r = target_.read(byte, 1, Access::read, now);
    r.value = (r.value >> bit) & 1u;
    return r;
  }

  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value,
                                std::uint64_t now) override {
    if (size != 4) {
      MemResult r;
      r.fault = Fault::misaligned;
      return r;
    }
    const std::uint32_t byte = addr / 32u;
    const unsigned bit = (addr / 4u) % 8u;
    // Internal read-modify-write: one bus transaction, hence atomic with
    // respect to the core's interrupt recognition.
    const MemResult old = target_.read(byte, 1, Access::read, now);
    if (!old.ok()) {
      return old;
    }
    const std::uint32_t updated =
        (value & 1u) != 0 ? (old.value | (1u << bit))
                          : (old.value & ~(1u << bit));
    MemResult r = target_.write(byte, 1, updated, now);
    // Surface a single access cost: the internal RMW is pipelined inside
    // the bit-band bridge, so charge only the write leg.
    return r;
  }

 private:
  Device& target_;
  std::uint32_t target_bytes_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_BITBAND_H
