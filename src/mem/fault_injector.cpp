#include "mem/fault_injector.h"

namespace aces::mem {

unsigned FaultInjector::advance_to(std::uint64_t now) {
  if (now <= last_now_ || (caches_.empty() && tcms_.empty())) {
    last_now_ = now;
    return 0;
  }
  const std::uint64_t elapsed = now - last_now_;
  last_now_ = now;
  // Expected upsets in the window; draw a count by repeated Bernoulli on a
  // fine grid (adequate for the small rates used here).
  const double mean = config_.upsets_per_mcycle *
                      static_cast<double>(elapsed) / 1.0e6;
  unsigned count = static_cast<unsigned>(mean);
  if (rng_.chance(mean - static_cast<double>(count))) {
    ++count;
  }
  for (unsigned k = 0; k < count; ++k) {
    inject_one();
  }
  injected_ += count;
  if (count > 0 && upset_hook_) {
    upset_hook_();
  }
  return count;
}

void FaultInjector::inject_one() {
  const std::size_t targets = caches_.size() + tcms_.size();
  const std::size_t pick = static_cast<std::size_t>(rng_.next_below(targets));
  if (pick < caches_.size()) {
    // If the cache has no valid line yet, the upset lands in an unused cell
    // — a harmless miss in the model, matching reality.
    (void)caches_[pick]->flip_random_bit(rng_, config_.tag_fraction);
    return;
  }
  Tcm& tcm = *tcms_[pick - caches_.size()];
  const std::uint32_t addr =
      static_cast<std::uint32_t>(rng_.next_below(tcm.size_bytes()));
  const auto bit = static_cast<std::uint8_t>(1u << rng_.next_below(8));
  tcm.inject_bit_flips(addr, bit);
}

}  // namespace aces::mem
