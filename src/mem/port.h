// MemPort: the CPU-facing memory interface.
//
// A port takes absolute addresses. DirectPort forwards straight to the bus;
// Cache (cache.h) implements the same interface with a set-associative
// cache in front of the bus for a configurable address window.
#ifndef ACES_MEM_PORT_H
#define ACES_MEM_PORT_H

#include "mem/bus.h"
#include "mem/device.h"

namespace aces::mem {

class MemPort {
 public:
  virtual ~MemPort() = default;
  [[nodiscard]] virtual MemResult read(std::uint32_t addr, unsigned size,
                                       Access kind, std::uint64_t now) = 0;
  [[nodiscard]] virtual MemResult write(std::uint32_t addr, unsigned size,
                                        std::uint32_t value,
                                        std::uint64_t now) = 0;
};

class DirectPort final : public MemPort {
 public:
  explicit DirectPort(Bus& bus) : bus_(bus) {}

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now) override {
    return bus_.read(addr, size, kind, now);
  }
  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value,
                                std::uint64_t now) override {
    return bus_.write(addr, size, value, now);
  }

 private:
  Bus& bus_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_PORT_H
