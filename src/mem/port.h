// MemPort: the CPU-facing memory interface.
//
// A port takes absolute addresses. DirectPort forwards straight to the bus;
// Cache (cache.h) implements the same interface with a set-associative
// cache in front of the bus for a configurable address window.
#ifndef ACES_MEM_PORT_H
#define ACES_MEM_PORT_H

#include "mem/bus.h"
#include "mem/device.h"

namespace aces::mem {

class MemPort {
 public:
  virtual ~MemPort() = default;
  [[nodiscard]] virtual MemResult read(std::uint32_t addr, unsigned size,
                                       Access kind, std::uint64_t now) = 0;
  [[nodiscard]] virtual MemResult write(std::uint32_t addr, unsigned size,
                                        std::uint32_t value,
                                        std::uint64_t now) = 0;

  // Capability probe, so hot paths ask once instead of issuing doomed span
  // lookups per access. Ports that interpose dynamic timing (caches) leave
  // this false even though their backing bus could answer.
  [[nodiscard]] virtual bool offers_direct_spans() const { return false; }
  // Bus::direct_span semantics (negative-cacheable mapping range on a
  // decline). Default: no span, no range.
  virtual bool direct_span(std::uint32_t addr, DirectSpan* out) {
    (void)addr;
    *out = DirectSpan{};
    return false;
  }
  // Bus::fixed_fetch_cost semantics. Ports that add state-dependent timing
  // of their own (caches) must keep declining even when the backing device
  // would answer.
  [[nodiscard]] virtual std::optional<std::uint32_t> fixed_fetch_cost(
      std::uint32_t addr, unsigned size) {
    (void)addr;
    (void)size;
    return std::nullopt;
  }
};

class DirectPort final : public MemPort {
 public:
  explicit DirectPort(Bus& bus) : bus_(bus) {}

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now) override {
    return bus_.read(addr, size, kind, now);
  }
  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value,
                                std::uint64_t now) override {
    return bus_.write(addr, size, value, now);
  }

  [[nodiscard]] bool offers_direct_spans() const override { return true; }
  bool direct_span(std::uint32_t addr, DirectSpan* out) override {
    return bus_.direct_span(addr, out);
  }
  [[nodiscard]] std::optional<std::uint32_t> fixed_fetch_cost(
      std::uint32_t addr, unsigned size) override {
    return bus_.fixed_fetch_cost(addr, size);
  }

 private:
  Bus& bus_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_PORT_H
