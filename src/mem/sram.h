// On-chip SRAM: fixed single-cycle (configurable) access, read/write.
#ifndef ACES_MEM_SRAM_H
#define ACES_MEM_SRAM_H

#include "mem/device.h"
#include "mem/storage.h"

namespace aces::mem {

class Sram final : public Device {
 public:
  Sram(std::string name, std::uint32_t size, std::uint32_t access_cycles = 1)
      : name_(std::move(name)), store_(size), access_cycles_(access_cycles) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t size_bytes() const override {
    return store_.size();
  }

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access,
                               std::uint64_t) override {
    MemResult r;
    r.value = store_.read_le(addr, size);
    r.cycles = access_cycles_;
    return r;
  }

  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value, std::uint64_t) override {
    store_.write_le(addr, size, value);
    MemResult r;
    r.cycles = access_cycles_;
    return r;
  }

  bool program(std::uint32_t addr, std::uint8_t byte) override {
    if (addr >= store_.size()) {
      return false;
    }
    store_.set_byte(addr, byte);
    return true;
  }

  // SRAM is the canonical DirectSpan device: fixed cost, no side effects.
  bool direct_span(DirectSpan* out) override {
    out->data = store_.data();
    out->size = store_.size();
    out->read_cycles = access_cycles_;
    out->write_cycles = access_cycles_;
    out->writable = true;
    return true;
  }

  [[nodiscard]] std::optional<std::uint32_t> fixed_fetch_cost(
      std::uint32_t, unsigned) const override {
    return access_cycles_;
  }

 private:
  std::string name_;
  ByteStore store_;
  std::uint32_t access_cycles_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_SRAM_H
