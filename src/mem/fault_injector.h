// Soft-error (single-event upset) injector for §3.1.3 experiments.
//
// Stands in for the cosmic-ray flux the paper discusses: bit flips arrive
// as a Poisson process over cycle time, targeting cache tag/data RAM and
// TCM cells. All draws come from a seeded Rng256, so every experiment is
// reproducible.
#ifndef ACES_MEM_FAULT_INJECTOR_H
#define ACES_MEM_FAULT_INJECTOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/cache.h"
#include "mem/tcm.h"
#include "support/rng.h"

namespace aces::mem {

struct FaultInjectorConfig {
  // Mean upsets per million cycles across all attached targets. Grossly
  // accelerated relative to reality, as is standard for SEU studies.
  double upsets_per_mcycle = 100.0;
  double tag_fraction = 0.2;  // share of cache upsets landing in tag RAM
};

class FaultInjector {
 public:
  FaultInjector(FaultInjectorConfig config, support::Rng256 rng)
      : config_(config), rng_(rng) {}

  void attach(Cache& cache) { caches_.push_back(&cache); }
  void attach(Tcm& tcm) { tcms_.push_back(&tcm); }

  // Advances the injector clock to `now` (cycles), planting upsets for the
  // elapsed window. Returns the number of upsets injected.
  unsigned advance_to(std::uint64_t now);

  // Invoked once per advance_to() that planted at least one upset. Upsets
  // mutate cache/TCM contents behind the bus's back, so anything caching
  // decoded views of memory (the core's decoded-instruction cache) hooks
  // in here to drop them.
  using UpsetHook = std::function<void()>;
  void set_upset_hook(UpsetHook hook) { upset_hook_ = std::move(hook); }

  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  void inject_one();

  FaultInjectorConfig config_;
  support::Rng256 rng_;
  std::vector<Cache*> caches_;
  std::vector<Tcm*> tcms_;
  UpsetHook upset_hook_;
  std::uint64_t last_now_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace aces::mem

#endif  // ACES_MEM_FAULT_INJECTOR_H
