#include "isa/codec.h"
#include "support/bits.h"

namespace aces::isa {

const Codec& codec_for(Encoding e) {
  switch (e) {
    case Encoding::w32: return w32_codec();
    case Encoding::n16: return n16_codec();
    case Encoding::b32: return b32_codec();
  }
  return w32_codec();
}

std::optional<std::uint16_t> encode_modified_imm(std::uint32_t value) {
  for (unsigned rot = 0; rot < 16; ++rot) {
    const std::uint32_t rotated = support::rotate_left(value, 2 * rot);
    if (rotated <= 0xFFu) {
      return static_cast<std::uint16_t>((rot << 8) | rotated);
    }
  }
  return std::nullopt;
}

std::uint32_t decode_modified_imm(std::uint16_t field) {
  const unsigned rot = (field >> 8) & 0xFu;
  const std::uint32_t imm8 = field & 0xFFu;
  return support::rotate_right(imm8, 2 * rot);
}

}  // namespace aces::isa
