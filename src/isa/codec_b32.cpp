// B32: the blended 16/32-bit encoding (stands in for Thumb-2).
//
// The instruction stream is a sequence of halfwords. A halfword whose top
// five bits are 11101 / 11110 / 11111 is the first half of a 32-bit
// instruction; every other halfword is a 16-bit instruction reusing the
// narrow forms from codec16.h. The 32-bit space is organized in three pages:
//
//  page M (11101): memory/multi/misc
//    hw1 [10:4] op7, [3:0] rn; hw2 varies:
//      0-7   ldr/ldrb/ldrh/ldrsb/ldrsh/str/strb/strh imm:
//              hw2 [15:12] rd, [11:0] imm12
//      8-15  same ops, register offset: hw2 [15:12] rd, [3:0] rm
//      16    ldr pc-relative: hw2 [15:12] rd, [11:0] imm12
//      17    adr:             hw2 [15:12] rd, [11:0] imm12
//      18-21 ldm / ldm! / stm / stm!:  hw2 = reglist
//      22-23 push / pop:               hw2 = reglist
//      24    tbb [rn, rm]:             hw2 [3:0] rm
//
//  page I (11110): data-processing immediate, movw/movt, branches
//    hw1 [10] S, [9:4] op6, [3:0] rn|imm4|cond|off[19:16]; hw2 varies:
//      0-14  and..teq (W32 op5 order): hw2 [15:12] rd, [11:0] mod-imm12
//      16/17 movw/movt: imm16 = hw1[3:0]:hw2[11:0], hw2 [15:12] rd
//      20/21 b / bl: off20 = hw1[3:0]:hw2[15:0], halfword-scaled, pc+4
//      22    b<cond>: hw1 [3:0] cond, hw2 simm16 halfwords, pc+4
//      24-27 lsl/lsr/asr/ror rd, rn, #imm5: hw2 [15:12] rd, [4:0] imm5
//
//  page R (11111): data-processing register, mul/div, bitfield, extend
//    hw1 [10] S, [9:4] op6, [3:0] rn; hw2 [15:12] rd, [11:8] ra, [3:0] rm
//      0-14  and..teq  |  16-19 lsl/lsr/asr/ror reg | 20 mul, 21 mla,
//      22 sdiv, 23 udiv
//      24 bfi, 25 bfc, 26 ubfx, 27 sbfx: hw2 [11:7] lsb, [6:2] width-1
//      28 rbit, 29 rev, 30 rev16, 31 clz, 32-35 sxtb/sxth/uxtb/uxth
//
// The encoder always prefers a 16-bit form, which is what gives B32 its
// Thumb-class density while keeping W32-class capability (the paper's
// central design claim).
#include "isa/codec.h"
#include "isa/codec16.h"
#include "support/bits.h"
#include "support/check.h"

namespace aces::isa {

using support::bits;
using support::fits_signed;

namespace {

constexpr unsigned kPageM = 0b11101, kPageI = 0b11110, kPageR = 0b11111;

// page M op7
constexpr unsigned kMLdrLit = 16, kMAdr = 17, kMLdm = 18, kMLdmWb = 19,
                   kMStm = 20, kMStmWb = 21, kMPush = 22, kMPop = 23,
                   kMTbb = 24;
// page I / R shared dp op6 (W32 op5 order for 0..14)
constexpr unsigned kDpMov = 9, kDpCmp = 11, kDpTeq = 14;
constexpr unsigned kIMovw = 16, kIMovt = 17, kIB = 20, kIBl = 21, kIBcc = 22,
                   kIShiftBase = 24;  // +0 lsl, +1 lsr, +2 asr, +3 ror
constexpr unsigned kRShiftBase = 16, kRMul = 20, kRMla = 21, kRSdiv = 22,
                   kRUdiv = 23, kRBfi = 24, kRBfc = 25, kRUbfx = 26,
                   kRSbfx = 27, kRRbit = 28, kRRev = 29, kRRev16 = 30,
                   kRClz = 31, kRSxtb = 32, kRSxth = 33, kRUxtb = 34,
                   kRUxth = 35;

std::optional<unsigned> dp_op6(Op op) {
  switch (op) {
    case Op::and_: return 0;
    case Op::eor: return 1;
    case Op::sub: return 2;
    case Op::rsb: return 3;
    case Op::add: return 4;
    case Op::adc: return 5;
    case Op::sbc: return 6;
    case Op::orr: return 7;
    case Op::bic: return 8;
    case Op::mov: return 9;
    case Op::mvn: return 10;
    case Op::cmp: return 11;
    case Op::cmn: return 12;
    case Op::tst: return 13;
    case Op::teq: return 14;
    default: return std::nullopt;
  }
}

std::optional<unsigned> mem_idx(Op op) {
  switch (op) {
    case Op::ldr: return 0;
    case Op::ldrb: return 1;
    case Op::ldrh: return 2;
    case Op::ldrsb: return 3;
    case Op::ldrsh: return 4;
    case Op::str: return 5;
    case Op::strb: return 6;
    case Op::strh: return 7;
    default: return std::nullopt;
  }
}

struct Wide {
  std::uint16_t hw1 = 0;
  std::uint16_t hw2 = 0;
};

constexpr std::uint16_t hw1_of(unsigned page, unsigned s, unsigned op,
                               unsigned low4) {
  return static_cast<std::uint16_t>((page << 11) | (s << 10) | (op << 4) |
                                    low4);
}

// Builds the 32-bit form, or nullopt when unrepresentable.
std::optional<Wide> build_wide(const Instruction& insn, std::int64_t disp) {
  // 32-bit B32 instructions carry no condition field; predication comes from
  // IT blocks, so only AL-encoded instructions reach the encoder (except
  // bcc, which encodes its condition in hw1).
  if (insn.cond != Cond::al && insn.op != Op::b) {
    return std::nullopt;
  }
  const unsigned s_bit = insn.set_flags == SetFlags::yes ? 1u : 0u;

  if (const auto op6 = dp_op6(insn.op)) {
    const bool is_compare = insn.op == Op::cmp || insn.op == Op::cmn ||
                            insn.op == Op::tst || insn.op == Op::teq;
    const unsigned s = is_compare ? 1u : s_bit;
    const Reg rd = is_compare ? 0 : insn.rd;
    if (insn.uses_imm) {
      const auto field =
          insn.imm < 0 ? std::nullopt
                       : encode_modified_imm(static_cast<std::uint32_t>(
                             insn.imm));
      if (!field) {
        return std::nullopt;
      }
      return Wide{hw1_of(kPageI, s, *op6, insn.rn),
                  static_cast<std::uint16_t>((unsigned(rd) << 12) | *field)};
    }
    return Wide{hw1_of(kPageR, s, *op6, insn.rn),
                static_cast<std::uint16_t>((unsigned(rd) << 12) |
                                           (unsigned(insn.ra) << 8) |
                                           unsigned(insn.rm))};
  }

  switch (insn.op) {
    case Op::lsl:
    case Op::lsr:
    case Op::asr:
    case Op::ror: {
      const unsigned k = insn.op == Op::lsl   ? 0u
                         : insn.op == Op::lsr ? 1u
                         : insn.op == Op::asr ? 2u
                                              : 3u;
      if (insn.uses_imm) {
        if (insn.imm < 0 || insn.imm > 31) {
          return std::nullopt;
        }
        return Wide{hw1_of(kPageI, s_bit, kIShiftBase + k, insn.rn),
                    static_cast<std::uint16_t>(
                        (unsigned(insn.rd) << 12) |
                        static_cast<unsigned>(insn.imm))};
      }
      return Wide{hw1_of(kPageR, s_bit, kRShiftBase + k, insn.rn),
                  static_cast<std::uint16_t>((unsigned(insn.rd) << 12) |
                                             unsigned(insn.rm))};
    }

    case Op::movw:
    case Op::movt: {
      if (insn.imm < 0 || insn.imm > 0xFFFF) {
        return std::nullopt;
      }
      const auto v = static_cast<std::uint32_t>(insn.imm);
      const unsigned op = insn.op == Op::movw ? kIMovw : kIMovt;
      return Wide{hw1_of(kPageI, 0, op, v >> 12),
                  static_cast<std::uint16_t>((unsigned(insn.rd) << 12) |
                                             (v & 0xFFFu))};
    }

    case Op::mul:
    case Op::mla:
    case Op::sdiv:
    case Op::udiv: {
      if (insn.uses_imm) {
        return std::nullopt;
      }
      unsigned op = 0;
      switch (insn.op) {
        case Op::mul: op = kRMul; break;
        case Op::mla: op = kRMla; break;
        case Op::sdiv: op = kRSdiv; break;
        default: op = kRUdiv; break;
      }
      return Wide{hw1_of(kPageR, insn.op == Op::mul ? s_bit : 0, op, insn.rn),
                  static_cast<std::uint16_t>((unsigned(insn.rd) << 12) |
                                             (unsigned(insn.ra) << 8) |
                                             unsigned(insn.rm))};
    }

    case Op::bfi:
    case Op::bfc:
    case Op::ubfx:
    case Op::sbfx: {
      if (insn.width < 1 || insn.width > 32 || insn.imm < 0 || insn.imm > 31 ||
          insn.imm + insn.width > 32) {
        return std::nullopt;
      }
      unsigned op = 0;
      switch (insn.op) {
        case Op::bfi: op = kRBfi; break;
        case Op::bfc: op = kRBfc; break;
        case Op::ubfx: op = kRUbfx; break;
        default: op = kRSbfx; break;
      }
      const Reg rn = insn.op == Op::bfc ? 0 : insn.rn;
      return Wide{hw1_of(kPageR, 0, op, rn),
                  static_cast<std::uint16_t>(
                      (unsigned(insn.rd) << 12) |
                      (static_cast<unsigned>(insn.imm) << 7) |
                      ((unsigned(insn.width) - 1u) << 2))};
    }

    case Op::rbit:
    case Op::rev:
    case Op::rev16:
    case Op::clz:
    case Op::sxtb:
    case Op::sxth:
    case Op::uxtb:
    case Op::uxth: {
      unsigned op = 0;
      switch (insn.op) {
        case Op::rbit: op = kRRbit; break;
        case Op::rev: op = kRRev; break;
        case Op::rev16: op = kRRev16; break;
        case Op::clz: op = kRClz; break;
        case Op::sxtb: op = kRSxtb; break;
        case Op::sxth: op = kRSxth; break;
        case Op::uxtb: op = kRUxtb; break;
        default: op = kRUxth; break;
      }
      return Wide{hw1_of(kPageR, 0, op, 0),
                  static_cast<std::uint16_t>((unsigned(insn.rd) << 12) |
                                             unsigned(insn.rm))};
    }

    case Op::ldr:
    case Op::ldrb:
    case Op::ldrh:
    case Op::ldrsb:
    case Op::ldrsh:
    case Op::str:
    case Op::strb:
    case Op::strh: {
      const auto idx = mem_idx(insn.op);
      if (insn.addr == AddrMode::offset_imm) {
        if (insn.imm < 0 || insn.imm > 4095) {
          return std::nullopt;
        }
        return Wide{hw1_of(kPageM, 0, *idx, insn.rn),
                    static_cast<std::uint16_t>(
                        (unsigned(insn.rd) << 12) |
                        static_cast<unsigned>(insn.imm))};
      }
      if (insn.addr == AddrMode::offset_reg) {
        return Wide{hw1_of(kPageM, 0, *idx + 8, insn.rn),
                    static_cast<std::uint16_t>((unsigned(insn.rd) << 12) |
                                               unsigned(insn.rm))};
      }
      if (insn.addr == AddrMode::pc_rel && insn.op == Op::ldr) {
        if (disp < 0 || disp > 4095) {
          return std::nullopt;
        }
        return Wide{hw1_of(kPageM, 0, kMLdrLit, 0),
                    static_cast<std::uint16_t>(
                        (unsigned(insn.rd) << 12) |
                        static_cast<unsigned>(disp))};
      }
      return std::nullopt;
    }

    case Op::adr:
      if (disp < 0 || disp > 4095) {
        return std::nullopt;
      }
      return Wide{hw1_of(kPageM, 0, kMAdr, 0),
                  static_cast<std::uint16_t>((unsigned(insn.rd) << 12) |
                                             static_cast<unsigned>(disp))};

    case Op::ldm:
    case Op::stm: {
      if (insn.reglist == 0) {
        return std::nullopt;
      }
      const unsigned op = insn.op == Op::ldm ? (insn.writeback ? kMLdmWb : kMLdm)
                                             : (insn.writeback ? kMStmWb : kMStm);
      return Wide{hw1_of(kPageM, 0, op, insn.rn), insn.reglist};
    }
    case Op::push:
      if (insn.reglist == 0) {
        return std::nullopt;
      }
      return Wide{hw1_of(kPageM, 0, kMPush, 0), insn.reglist};
    case Op::pop:
      if (insn.reglist == 0) {
        return std::nullopt;
      }
      return Wide{hw1_of(kPageM, 0, kMPop, 0), insn.reglist};

    case Op::tbb:
      return Wide{hw1_of(kPageM, 0, kMTbb, insn.rn),
                  static_cast<std::uint16_t>(insn.rm)};

    case Op::b: {
      const std::int64_t rel = disp - 4;
      if (rel % 2 != 0) {
        return std::nullopt;
      }
      if (insn.cond == Cond::al) {
        if (!fits_signed(rel / 2, 20)) {
          return std::nullopt;
        }
        const auto off = static_cast<std::uint32_t>(rel / 2) & 0xF'FFFFu;
        return Wide{hw1_of(kPageI, 0, kIB, off >> 16),
                    static_cast<std::uint16_t>(off & 0xFFFFu)};
      }
      if (!fits_signed(rel / 2, 16)) {
        return std::nullopt;
      }
      return Wide{hw1_of(kPageI, 0, kIBcc,
                         static_cast<unsigned>(insn.cond)),
                  static_cast<std::uint16_t>(
                      static_cast<std::uint32_t>(rel / 2) & 0xFFFFu)};
    }
    case Op::bl: {
      const std::int64_t rel = disp - 4;
      if (rel % 2 != 0 || !fits_signed(rel / 2, 20)) {
        return std::nullopt;
      }
      const auto off = static_cast<std::uint32_t>(rel / 2) & 0xF'FFFFu;
      return Wide{hw1_of(kPageI, 0, kIBl, off >> 16),
                  static_cast<std::uint16_t>(off & 0xFFFFu)};
    }

    default:
      return std::nullopt;
  }
}

class B32Codec final : public Codec {
 public:
  [[nodiscard]] Encoding encoding() const override { return Encoding::b32; }
  [[nodiscard]] int alignment() const override { return 2; }

  [[nodiscard]] int size_for(const Instruction& insn,
                             std::int64_t disp) const override {
    if (detail::encode16(insn, disp, /*b32_mode=*/true).has_value()) {
      return 2;
    }
    return build_wide(insn, disp).has_value() ? 4 : 0;
  }

  void encode(const Instruction& insn, std::int64_t disp, int size,
              std::vector<std::uint8_t>& out) const override {
    if (size == 2) {
      const auto hw = detail::encode16(insn, disp, /*b32_mode=*/true);
      ACES_CHECK_MSG(hw.has_value(), "instruction lost its 16-bit B32 form");
      out.push_back(static_cast<std::uint8_t>(*hw));
      out.push_back(static_cast<std::uint8_t>(*hw >> 8));
      return;
    }
    ACES_CHECK(size == 4);
    const auto wide = build_wide(insn, disp);
    ACES_CHECK_MSG(wide.has_value(), "instruction not encodable in B32");
    out.push_back(static_cast<std::uint8_t>(wide->hw1));
    out.push_back(static_cast<std::uint8_t>(wide->hw1 >> 8));
    out.push_back(static_cast<std::uint8_t>(wide->hw2));
    out.push_back(static_cast<std::uint8_t>(wide->hw2 >> 8));
  }

  [[nodiscard]] int decode(std::span<const std::uint8_t> code,
                           Instruction& out) const override;
};

// Decodes the 32-bit form; returns true on success.
bool decode_wide(std::uint16_t hw1, std::uint16_t hw2, Instruction& out) {
  const unsigned page = hw1 >> 11;
  const unsigned s = (hw1 >> 10) & 1u;
  const unsigned op = (hw1 >> 4) & 0x3Fu;
  const unsigned low4 = hw1 & 0xFu;
  const Reg rd = static_cast<Reg>(hw2 >> 12);
  out = Instruction{};

  static constexpr Op dp_ops[15] = {Op::and_, Op::eor, Op::sub, Op::rsb,
                                    Op::add,  Op::adc, Op::sbc, Op::orr,
                                    Op::bic,  Op::mov, Op::mvn, Op::cmp,
                                    Op::cmn,  Op::tst, Op::teq};

  if (page == kPageI) {
    if (op <= kDpTeq) {
      out.op = dp_ops[op];
      const bool is_compare = op >= kDpCmp && op <= kDpTeq;
      if (is_compare && (s == 0 || rd != 0)) {
        return false;  // compares always encode S=1, rd=0
      }
      if ((op == kDpMov || out.op == Op::mvn) && low4 != 0) {
        return false;  // rn field unused by mov/mvn
      }
      out.set_flags = (is_compare || s) ? SetFlags::yes : SetFlags::no;
      out.rd = is_compare ? 0 : rd;
      out.rn = static_cast<Reg>(low4);
      if (op == kDpMov || out.op == Op::mvn) {
        out.rn = 0;
      }
      const auto field = static_cast<std::uint16_t>(hw2 & 0xFFF);
      if (encode_modified_imm(decode_modified_imm(field)) != field) {
        return false;  // non-canonical rotation
      }
      out.uses_imm = true;
      out.imm = decode_modified_imm(field);
      return true;
    }
    if (op == kIMovw || op == kIMovt) {
      if (s != 0) {
        return false;
      }
      out.op = op == kIMovw ? Op::movw : Op::movt;
      out.rd = rd;
      out.uses_imm = true;
      out.imm = (static_cast<std::int64_t>(low4) << 12) | (hw2 & 0xFFFu);
      return true;
    }
    if (op == kIB || op == kIBl) {
      if (s != 0) {
        return false;
      }
      out.op = op == kIB ? Op::b : Op::bl;
      const std::uint32_t off =
          (static_cast<std::uint32_t>(low4) << 16) | hw2;
      out.imm = static_cast<std::int64_t>(support::sign_extend(off, 20)) * 2 + 4;
      return true;
    }
    if (op == kIBcc) {
      if (low4 > 13 || s != 0) {
        return false;
      }
      out.op = Op::b;
      out.cond = static_cast<Cond>(low4);
      out.imm = static_cast<std::int64_t>(support::sign_extend(hw2, 16)) * 2 + 4;
      return true;
    }
    if (op >= kIShiftBase && op <= kIShiftBase + 3) {
      if ((hw2 & 0x0FE0u) != 0) {
        return false;  // bits [11:5] unused by shift-immediate
      }
      static constexpr Op shifts[4] = {Op::lsl, Op::lsr, Op::asr, Op::ror};
      out.op = shifts[op - kIShiftBase];
      out.set_flags = s ? SetFlags::yes : SetFlags::no;
      out.rd = rd;
      out.rn = static_cast<Reg>(low4);
      out.uses_imm = true;
      out.imm = hw2 & 0x1Fu;
      return true;
    }
    return false;
  }

  if (page == kPageR) {
    if (op <= kDpTeq) {
      out.op = dp_ops[op];
      const bool is_compare = op >= kDpCmp && op <= kDpTeq;
      if (is_compare && (s == 0 || rd != 0)) {
        return false;
      }
      if ((op == kDpMov || out.op == Op::mvn) && low4 != 0) {
        return false;
      }
      if ((hw2 & 0x00F0u) != 0) {
        return false;  // spare bits [7:4]
      }
      out.set_flags = (is_compare || s) ? SetFlags::yes : SetFlags::no;
      out.rd = is_compare ? 0 : rd;
      out.rn = static_cast<Reg>(low4);
      if (op == kDpMov || out.op == Op::mvn) {
        out.rn = 0;
      }
      out.ra = static_cast<Reg>((hw2 >> 8) & 0xFu);
      out.rm = static_cast<Reg>(hw2 & 0xFu);
      return true;
    }
    if (op >= kRShiftBase && op <= kRShiftBase + 3) {
      if ((hw2 & 0x0FF0u) != 0) {
        return false;  // bits [11:4] unused by shift-register
      }
      static constexpr Op shifts[4] = {Op::lsl, Op::lsr, Op::asr, Op::ror};
      out.op = shifts[op - kRShiftBase];
      out.set_flags = s ? SetFlags::yes : SetFlags::no;
      out.rd = rd;
      out.rn = static_cast<Reg>(low4);
      out.rm = static_cast<Reg>(hw2 & 0xFu);
      return true;
    }
    switch (op) {
      case kRMul:
      case kRMla:
      case kRSdiv:
      case kRUdiv:
        if (s != 0 && op != kRMul) {
          return false;  // only mul carries an S bit
        }
        if ((hw2 & 0x00F0u) != 0) {
          return false;
        }
        out.op = op == kRMul    ? Op::mul
                 : op == kRMla  ? Op::mla
                 : op == kRSdiv ? Op::sdiv
                                : Op::udiv;
        out.set_flags = (op == kRMul && s) ? SetFlags::yes : SetFlags::no;
        out.rd = rd;
        out.rn = static_cast<Reg>(low4);
        out.ra = static_cast<Reg>((hw2 >> 8) & 0xFu);
        out.rm = static_cast<Reg>(hw2 & 0xFu);
        return true;
      case kRBfi:
      case kRBfc:
      case kRUbfx:
      case kRSbfx:
        if (s != 0 || (hw2 & 0x3u) != 0 || (op == kRBfc && low4 != 0)) {
          return false;
        }
        if (((hw2 >> 7) & 0x1Fu) + (((hw2 >> 2) & 0x1Fu) + 1u) > 32u) {
          return false;  // field exceeds the register
        }
        out.op = op == kRBfi    ? Op::bfi
                 : op == kRBfc  ? Op::bfc
                 : op == kRUbfx ? Op::ubfx
                                : Op::sbfx;
        out.rd = rd;
        out.rn = static_cast<Reg>(low4);
        out.imm = (hw2 >> 7) & 0x1Fu;
        out.width = static_cast<std::uint8_t>(((hw2 >> 2) & 0x1Fu) + 1u);
        return true;
      case kRRbit:
      case kRRev:
      case kRRev16:
      case kRClz:
      case kRSxtb:
      case kRSxth:
      case kRUxtb:
      case kRUxth: {
        if (s != 0 || low4 != 0 || (hw2 & 0x0FF0u) != 0) {
          return false;
        }
        static constexpr Op unary[8] = {Op::rbit, Op::rev,  Op::rev16,
                                        Op::clz,  Op::sxtb, Op::sxth,
                                        Op::uxtb, Op::uxth};
        out.op = unary[op - kRRbit];
        out.rd = rd;
        out.rm = static_cast<Reg>(hw2 & 0xFu);
        return true;
      }
      default:
        return false;
    }
  }

  // page M never uses the S-bit position.
  if (s != 0) {
    return false;
  }
  if (op <= 7) {
    static constexpr Op mops[8] = {Op::ldr,   Op::ldrb, Op::ldrh, Op::ldrsb,
                                   Op::ldrsh, Op::str,  Op::strb, Op::strh};
    out.op = mops[op];
    out.rd = rd;
    out.rn = static_cast<Reg>(low4);
    out.addr = AddrMode::offset_imm;
    out.imm = hw2 & 0xFFFu;
    return true;
  }
  if (op <= 15) {
    if ((hw2 & 0x0FF0u) != 0) {
      return false;  // bits [11:4] unused by register-offset forms
    }
    static constexpr Op mops[8] = {Op::ldr,   Op::ldrb, Op::ldrh, Op::ldrsb,
                                   Op::ldrsh, Op::str,  Op::strb, Op::strh};
    out.op = mops[op - 8];
    out.rd = rd;
    out.rn = static_cast<Reg>(low4);
    out.addr = AddrMode::offset_reg;
    out.rm = static_cast<Reg>(hw2 & 0xFu);
    return true;
  }
  switch (op) {
    case kMLdrLit:
      if (low4 != 0) {
        return false;
      }
      out.op = Op::ldr;
      out.rd = rd;
      out.addr = AddrMode::pc_rel;
      out.imm = hw2 & 0xFFFu;
      return true;
    case kMAdr:
      if (low4 != 0) {
        return false;
      }
      out.op = Op::adr;
      out.rd = rd;
      out.imm = hw2 & 0xFFFu;
      return true;
    case kMLdm:
    case kMLdmWb:
    case kMStm:
    case kMStmWb:
      out.op = (op == kMLdm || op == kMLdmWb) ? Op::ldm : Op::stm;
      out.writeback = op == kMLdmWb || op == kMStmWb;
      out.rn = static_cast<Reg>(low4);
      out.reglist = hw2;
      return hw2 != 0;
    case kMPush:
    case kMPop:
      if (low4 != 0) {
        return false;
      }
      out.op = op == kMPush ? Op::push : Op::pop;
      out.reglist = hw2;
      return hw2 != 0;
    case kMTbb:
      if ((hw2 & 0xFFF0u) != 0) {
        return false;
      }
      out.op = Op::tbb;
      out.rn = static_cast<Reg>(low4);
      out.rm = static_cast<Reg>(hw2 & 0xFu);
      return true;
    default:
      return false;
  }
}

int B32Codec::decode(std::span<const std::uint8_t> code,
                     Instruction& out) const {
  if (code.size() < 2) {
    return 0;
  }
  const std::uint16_t hw1 =
      static_cast<std::uint16_t>(code[0] | (code[1] << 8));
  if (!detail::is_wide_prefix(hw1)) {
    return detail::decode16(hw1, /*b32_mode=*/true, out) ? 2 : 0;
  }
  if (code.size() < 4) {
    return 0;
  }
  const std::uint16_t hw2 =
      static_cast<std::uint16_t>(code[2] | (code[3] << 8));
  return decode_wide(hw1, hw2, out) ? 4 : 0;
}

const B32Codec kB32Codec;

}  // namespace

const Codec& b32_codec() { return kB32Codec; }

}  // namespace aces::isa
