// Structured assembler for UC32 programs.
//
// The assembler is encoding-aware: the same instruction stream assembles to
// different byte sizes under W32 / N16 / B32, which is precisely what the
// paper's code-density comparison measures. It provides:
//   - labels and branch fixups with iterative relaxation (a branch starts at
//     its smallest form and grows until its displacement fits; conditional
//     branches that exceed every native range are expanded to an inverted
//     branch over an unconditional one, and cbz/cbnz fall back to
//     cmp #0 + b<cc>);
//   - literal pools: load_literal() collects 32-bit constants which are
//     deduplicated and emitted at the next pool() barrier, with the pc-
//     relative load patched to the slot (the §2.2 mechanism whose cost the
//     flash experiments measure);
//   - tbb jump tables, raw data and alignment directives.
//
// Typical use: the KIR lowering drives one Assembler per program; tests and
// examples also use it directly as a tiny structured "assembly language".
#ifndef ACES_ISA_ASSEMBLER_H
#define ACES_ISA_ASSEMBLER_H

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/codec.h"
#include "isa/isa.h"

namespace aces::isa {

// Assembled code image, placed at [base, base + bytes.size()).
struct Image {
  Encoding encoding = Encoding::w32;
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes.size());
  }
  [[nodiscard]] std::uint32_t end() const { return base + size(); }
};

using Label = std::int32_t;

class Assembler {
 public:
  Assembler(Encoding enc, std::uint32_t text_base);

  [[nodiscard]] Encoding encoding() const { return encoding_; }

  // ----- labels -----
  [[nodiscard]] Label new_label();
  void bind(Label l);
  [[nodiscard]] Label bound_label();  // new label bound here

  // ----- instructions -----
  // Emits a non-control-flow instruction; throws if not representable in
  // this encoding (the KIR lowering queries codecs first, so a throw here
  // indicates a lowering bug).
  void ins(const Instruction& insn);

  // Emits b/bl/cbz/cbnz targeting a label.
  void branch(const Instruction& insn, Label target);
  void b(Label target, Cond cond = Cond::al);
  void bl(Label target);

  // Loads a 32-bit constant via the current literal pool (pc-relative load).
  void load_literal(Reg rd, std::uint32_t value);

  // Forms the address of a label (pc-relative, forward only).
  void adr(Reg rd, Label target);

  // Emits the pending literal pool here (must be unreachable, e.g. after an
  // unconditional branch or return). No-op when no literals are pending.
  void pool();

  // Emits a pool island in the middle of reachable code: a branch over the
  // pending pool (how compilers keep literals within pc-relative range in
  // long functions). No-op when nothing is pending.
  void pool_island();

  // Literals collected since the last pool barrier.
  [[nodiscard]] int pending_literals() const { return pending_lits_; }

  // tbb jump table: emits the byte table for a tbb instruction previously
  // emitted at `tbb_site` (bind a label *at* the tbb instruction). Each
  // entry k is (address(targets[k]) - (tbb_address + 4)) / 2.
  void jump_table(Label tbb_site, std::vector<Label> targets);

  // ----- data / layout -----
  void align(std::uint32_t n);
  void word(std::uint32_t w);
  void half(std::uint16_t h);
  void raw(std::span<const std::uint8_t> data);

  // ----- assembly -----
  // Resolves sizes and emits the final image. Throws std::logic_error on
  // unencodable instructions or out-of-range fixups.
  [[nodiscard]] Image assemble();

  // Valid after assemble().
  [[nodiscard]] std::uint32_t label_address(Label l) const;

 private:
  enum class Kind : std::uint8_t {
    insn,
    branch,
    lit_load,
    adr_label,
    bind,
    pool,
    jump_table,
    align,
    data,
  };

  struct Item {
    Kind kind = Kind::insn;
    Instruction insn;
    Label label = -1;             // branch/adr target or bind label
    std::uint32_t value = 0;      // literal value / alignment
    std::vector<std::uint8_t> data;
    std::vector<Label> targets;   // jump table
    int pool_index = -1;          // lit_load: which pool; pool: own index
    int slot = -1;                // lit_load: slot within pool
    int size = 0;                 // current byte size estimate
    bool expanded = false;        // branch expanded form
    std::uint32_t addr = 0;       // resolved address (during relaxation)
  };

  // Returns the pc-relative displacement convention value for item at
  // final addresses.
  [[nodiscard]] std::int64_t branch_disp(const Item& item) const;

  void finalize_pools();
  bool compute_layout();  // returns true if any size changed
  void encode_all(std::vector<std::uint8_t>& out);
  void encode_branch(const Item& item, std::vector<std::uint8_t>& out);

  const Codec& codec_;
  Encoding encoding_;
  std::uint32_t base_;
  std::vector<Item> items_;
  std::vector<std::uint32_t> label_addr_;
  std::vector<bool> label_bound_;
  std::vector<std::vector<std::uint32_t>> pool_values_;  // per pool barrier
  std::vector<std::uint32_t> pool_addr_;                 // per pool barrier
  int open_pool_ = 0;  // pool index new literals go to
  int pending_lits_ = 0;
  bool assembled_ = false;
  bool first_pass_ = true;  // layout pass before label addresses are known
};

}  // namespace aces::isa

#endif  // ACES_ISA_ASSEMBLER_H
