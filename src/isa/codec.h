// Encoder/decoder interface for the three UC32 encodings.
//
// Displacement conventions (shared by assembler, codecs and executor):
//   - Branch-like instructions (b, bl, cbz, cbnz): `disp` is
//     target_address - instruction_address. Codecs fold in their own
//     reference-point offset internally; decoders reconstruct imm == disp so
//     the executor computes target = instruction_address + imm.
//   - PC-relative loads (AddrMode::pc_rel) and `adr`: `disp` is
//     literal_address - align4(instruction_address + 4); always >= 0. The
//     decoder reconstructs imm == disp and the executor re-applies the same
//     aligned base.
// Instructions that are not representable in an encoding (e.g. sdiv in W32,
// bfi in N16) make size_for() return 0; the KIR lowering uses this to choose
// synthesis strategies, which is exactly the mechanism behind the paper's
// code-density and performance differences.
#ifndef ACES_ISA_CODEC_H
#define ACES_ISA_CODEC_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "isa/isa.h"

namespace aces::isa {

class Codec {
 public:
  virtual ~Codec() = default;

  [[nodiscard]] virtual Encoding encoding() const = 0;

  // Code alignment in bytes (4 for W32, 2 for the halfword streams).
  [[nodiscard]] virtual int alignment() const = 0;

  // Byte size the instruction encodes to (smallest form that fits), or 0 if
  // the instruction/displacement is not representable. `disp` is only
  // consulted for branch-like and pc-relative instructions.
  [[nodiscard]] virtual int size_for(const Instruction& insn,
                                     std::int64_t disp) const = 0;

  // Appends exactly `size` bytes (a value previously returned by size_for).
  virtual void encode(const Instruction& insn, std::int64_t disp, int size,
                      std::vector<std::uint8_t>& out) const = 0;

  // Decodes the instruction at code[0..]; returns bytes consumed, or 0 if
  // the bit pattern is not a valid instruction of this encoding.
  [[nodiscard]] virtual int decode(std::span<const std::uint8_t> code,
                                   Instruction& out) const = 0;
};

// Singleton accessors (codecs are stateless).
[[nodiscard]] const Codec& codec_for(Encoding e);
[[nodiscard]] const Codec& w32_codec();
[[nodiscard]] const Codec& n16_codec();
[[nodiscard]] const Codec& b32_codec();

// ARM-style modified immediate: value == imm8 rotated right by 2*rot4.
// Returns (rot << 8) | imm8 when encodable. Shared by W32 and B32.
[[nodiscard]] std::optional<std::uint16_t> encode_modified_imm(
    std::uint32_t value);
[[nodiscard]] std::uint32_t decode_modified_imm(std::uint16_t field);

}  // namespace aces::isa

#endif  // ACES_ISA_CODEC_H
