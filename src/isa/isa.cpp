#include "isa/isa.h"

#include "support/check.h"

namespace aces::isa {

std::string_view reg_name(Reg r) {
  static constexpr std::string_view names[16] = {
      "r0", "r1", "r2",  "r3",  "r4",  "r5", "r6", "r7",
      "r8", "r9", "r10", "r11", "r12", "sp", "lr", "pc"};
  ACES_CHECK(r < 16);
  return names[r];
}

Cond invert(Cond c) {
  ACES_CHECK_MSG(c != Cond::al, "AL has no inverse");
  // Condition pairs differ in the low bit (eq/ne, cs/cc, ...).
  return static_cast<Cond>(static_cast<std::uint8_t>(c) ^ 1u);
}

std::string_view cond_name(Cond c) {
  static constexpr std::string_view names[15] = {
      "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
      "hi", "ls", "ge", "lt", "gt", "le", ""};
  return names[static_cast<std::uint8_t>(c)];
}

std::string_view op_name(Op op) {
  switch (op) {
    case Op::add: return "add";
    case Op::adc: return "adc";
    case Op::sub: return "sub";
    case Op::sbc: return "sbc";
    case Op::rsb: return "rsb";
    case Op::and_: return "and";
    case Op::orr: return "orr";
    case Op::eor: return "eor";
    case Op::bic: return "bic";
    case Op::mov: return "mov";
    case Op::mvn: return "mvn";
    case Op::lsl: return "lsl";
    case Op::lsr: return "lsr";
    case Op::asr: return "asr";
    case Op::ror: return "ror";
    case Op::cmp: return "cmp";
    case Op::cmn: return "cmn";
    case Op::tst: return "tst";
    case Op::teq: return "teq";
    case Op::mul: return "mul";
    case Op::mla: return "mla";
    case Op::sdiv: return "sdiv";
    case Op::udiv: return "udiv";
    case Op::movw: return "movw";
    case Op::movt: return "movt";
    case Op::bfi: return "bfi";
    case Op::bfc: return "bfc";
    case Op::ubfx: return "ubfx";
    case Op::sbfx: return "sbfx";
    case Op::rbit: return "rbit";
    case Op::rev: return "rev";
    case Op::rev16: return "rev16";
    case Op::clz: return "clz";
    case Op::sxtb: return "sxtb";
    case Op::sxth: return "sxth";
    case Op::uxtb: return "uxtb";
    case Op::uxth: return "uxth";
    case Op::ldr: return "ldr";
    case Op::ldrb: return "ldrb";
    case Op::ldrh: return "ldrh";
    case Op::ldrsb: return "ldrsb";
    case Op::ldrsh: return "ldrsh";
    case Op::str: return "str";
    case Op::strb: return "strb";
    case Op::strh: return "strh";
    case Op::adr: return "adr";
    case Op::ldm: return "ldm";
    case Op::stm: return "stm";
    case Op::push: return "push";
    case Op::pop: return "pop";
    case Op::b: return "b";
    case Op::bl: return "bl";
    case Op::bx: return "bx";
    case Op::cbz: return "cbz";
    case Op::cbnz: return "cbnz";
    case Op::tbb: return "tbb";
    case Op::it: return "it";
    case Op::nop: return "nop";
    case Op::svc: return "svc";
    case Op::bkpt: return "bkpt";
    case Op::cps: return "cps";
    case Op::wfi: return "wfi";
  }
  return "?";
}

std::string_view encoding_name(Encoding e) {
  switch (e) {
    case Encoding::w32: return "W32";
    case Encoding::n16: return "N16";
    case Encoding::b32: return "B32";
  }
  return "?";
}

Instruction ins_rrr(Op op, Reg rd, Reg rn, Reg rm, SetFlags s) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
  i.set_flags = s;
  return i;
}

Instruction ins_rri(Op op, Reg rd, Reg rn, std::int64_t imm, SetFlags s) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.uses_imm = true;
  i.imm = imm;
  i.set_flags = s;
  return i;
}

Instruction ins_mov_imm(Reg rd, std::int64_t imm, SetFlags s) {
  Instruction i;
  i.op = Op::mov;
  i.rd = rd;
  i.uses_imm = true;
  i.imm = imm;
  i.set_flags = s;
  return i;
}

Instruction ins_mov_reg(Reg rd, Reg rm, SetFlags s) {
  Instruction i;
  i.op = Op::mov;
  i.rd = rd;
  i.rm = rm;
  i.set_flags = s;
  return i;
}

Instruction ins_cmp_imm(Reg rn, std::int64_t imm) {
  Instruction i;
  i.op = Op::cmp;
  i.rn = rn;
  i.uses_imm = true;
  i.imm = imm;
  i.set_flags = SetFlags::yes;
  return i;
}

Instruction ins_cmp_reg(Reg rn, Reg rm) {
  Instruction i;
  i.op = Op::cmp;
  i.rn = rn;
  i.rm = rm;
  i.set_flags = SetFlags::yes;
  return i;
}

Instruction ins_ldst_imm(Op op, Reg rd, Reg rn, std::int64_t imm) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.addr = AddrMode::offset_imm;
  i.imm = imm;
  return i;
}

Instruction ins_ldst_reg(Op op, Reg rd, Reg rn, Reg rm) {
  Instruction i;
  i.op = op;
  i.rd = rd;
  i.rn = rn;
  i.rm = rm;
  i.addr = AddrMode::offset_reg;
  return i;
}

Instruction ins_push(std::uint16_t reglist) {
  Instruction i;
  i.op = Op::push;
  i.reglist = reglist;
  return i;
}

Instruction ins_pop(std::uint16_t reglist) {
  Instruction i;
  i.op = Op::pop;
  i.reglist = reglist;
  return i;
}

Instruction ins_ret() {
  Instruction i;
  i.op = Op::bx;
  i.rm = lr;
  return i;
}

Instruction ins_it(Cond firstcond, std::string_view pattern) {
  // pattern is "", "t", "e", "tt", ... up to 3 extra slots; the leading
  // (implicit) T for the first instruction is not written, matching ARM
  // assembler convention (IT, ITT, ITE, ...).
  ACES_CHECK(pattern.size() <= 3);
  ACES_CHECK(firstcond != Cond::al || pattern.empty());
  const auto fc = static_cast<std::uint8_t>(firstcond);
  // Thumb IT mask layout: for an n-instruction block, bits 3..(5-n) hold the
  // low condition bit for slots 2..n ('then' = firstcond low bit, 'else' =
  // its complement), and bit (4-n) is the 1 terminator.
  std::uint8_t mask = 0;
  const std::size_t n = pattern.size() + 1;
  for (std::size_t k = 1; k < n; ++k) {
    const char slot = pattern[k - 1];
    ACES_CHECK(slot == 't' || slot == 'e');
    const std::uint8_t low = (fc & 1u) ^ (slot == 'e' ? 1u : 0u);
    mask |= static_cast<std::uint8_t>(low << (4 - k));
  }
  mask |= static_cast<std::uint8_t>(1u << (4 - n));
  Instruction i;
  i.op = Op::it;
  i.cond = firstcond;
  i.it_mask = static_cast<std::uint8_t>(mask & 0xF);
  return i;
}

}  // namespace aces::isa
