#include "isa/codec16.h"

#include "support/bits.h"

namespace aces::isa::detail {

using support::bits;
using support::fits_signed;

namespace {

// F4 two-address ALU op numbers.
constexpr int kF4And = 0, kF4Eor = 1, kF4Lsl = 2, kF4Lsr = 3, kF4Asr = 4,
              kF4Adc = 5, kF4Sbc = 6, kF4Ror = 7, kF4Tst = 8, kF4Neg = 9,
              kF4Cmp = 10, kF4Cmn = 11, kF4Orr = 12, kF4Mul = 13,
              kF4Bic = 14, kF4Mvn = 15;

constexpr std::uint16_t f1(int op2, unsigned imm5, Reg rm, Reg rd) {
  return static_cast<std::uint16_t>((0b000u << 13) | (unsigned(op2) << 11) |
                                    (imm5 << 6) | (unsigned(rm) << 3) |
                                    unsigned(rd));
}
constexpr std::uint16_t f2(bool imm_form, bool is_sub, unsigned rm_or_imm3,
                           Reg rn, Reg rd) {
  return static_cast<std::uint16_t>(
      (0b00011u << 11) | (unsigned(imm_form) << 10) | (unsigned(is_sub) << 9) |
      (rm_or_imm3 << 6) | (unsigned(rn) << 3) | unsigned(rd));
}
constexpr std::uint16_t f3(int op2, Reg rd, unsigned imm8) {
  return static_cast<std::uint16_t>((0b001u << 13) | (unsigned(op2) << 11) |
                                    (unsigned(rd) << 8) | imm8);
}
constexpr std::uint16_t f4(int op4, Reg rm, Reg rdn) {
  return static_cast<std::uint16_t>((0b010000u << 10) | (unsigned(op4) << 6) |
                                    (unsigned(rm) << 3) | unsigned(rdn));
}
constexpr std::uint16_t f5(int op2, Reg rm, Reg rd) {
  return static_cast<std::uint16_t>((0b010001u << 10) | (unsigned(op2) << 8) |
                                    ((unsigned(rd) >> 3) << 7) |
                                    (unsigned(rm) << 3) | (unsigned(rd) & 7u));
}
constexpr std::uint16_t f7(int op3, Reg rm, Reg rn, Reg rd) {
  return static_cast<std::uint16_t>((0b0101u << 12) | (unsigned(op3) << 9) |
                                    (unsigned(rm) << 6) | (unsigned(rn) << 3) |
                                    unsigned(rd));
}

}  // namespace

std::optional<std::uint16_t> encode16(const Instruction& insn,
                                      std::int64_t disp, bool b32_mode) {
  const Reg rd = insn.rd, rn = insn.rn, rm = insn.rm;
  const std::int64_t imm = insn.imm;
  // Narrow forms have no condition field (conditions come from bcc or, in
  // b32 mode, from an enclosing IT block — in which case the instruction is
  // stored with cond al and predicated at execution time).
  if (insn.cond != Cond::al && insn.op != Op::b && insn.op != Op::it) {
    return std::nullopt;
  }

  switch (insn.op) {
    case Op::mov:
      if (insn.uses_imm) {
        if (is_lo(rd) && imm >= 0 && imm <= 255 &&
            flags_ok_setting(insn.set_flags)) {
          return f3(0b00, rd, static_cast<unsigned>(imm));
        }
        return std::nullopt;
      }
      // Register MOV: lo-lo with flags via lsl #0, otherwise the hi form.
      if (is_lo(rd) && is_lo(rm) && insn.set_flags == SetFlags::yes) {
        return f1(0b00, 0, rm, rd);
      }
      if (flags_ok_nonsetting(insn.set_flags) || (is_lo(rd) && is_lo(rm))) {
        if (flags_ok_nonsetting(insn.set_flags)) {
          return f5(0b10, rm, rd);
        }
        return f1(0b00, 0, rm, rd);
      }
      return std::nullopt;

    case Op::add:
      if (insn.uses_imm) {
        if (rd == sp && rn == sp && imm >= 0 && imm <= 508 && imm % 4 == 0 &&
            flags_ok_nonsetting(insn.set_flags)) {
          return static_cast<std::uint16_t>((0b10110000u << 8) |
                                            (unsigned(imm) >> 2));
        }
        if (rn == sp && is_lo(rd) && imm >= 0 && imm <= 1020 && imm % 4 == 0 &&
            flags_ok_nonsetting(insn.set_flags)) {
          return static_cast<std::uint16_t>((0b1010u << 12) | (1u << 11) |
                                            (unsigned(rd) << 8) |
                                            (unsigned(imm) >> 2));
        }
        if (is_lo(rd) && is_lo(rn) && flags_ok_setting(insn.set_flags)) {
          if (rd == rn && imm >= 0 && imm <= 255) {
            return f3(0b10, rd, static_cast<unsigned>(imm));
          }
          if (imm >= 0 && imm <= 7) {
            return f2(true, false, static_cast<unsigned>(imm), rn, rd);
          }
        }
        return std::nullopt;
      }
      if (is_lo(rd) && is_lo(rn) && is_lo(rm) &&
          flags_ok_setting(insn.set_flags)) {
        return f2(false, false, rm, rn, rd);
      }
      if (rd == rn && flags_ok_nonsetting(insn.set_flags)) {
        return f5(0b00, rm, rd);
      }
      return std::nullopt;

    case Op::sub:
      if (insn.uses_imm) {
        if (rd == sp && rn == sp && imm >= 0 && imm <= 508 && imm % 4 == 0 &&
            flags_ok_nonsetting(insn.set_flags)) {
          return static_cast<std::uint16_t>((0b10110000u << 8) | (1u << 7) |
                                            (unsigned(imm) >> 2));
        }
        if (is_lo(rd) && is_lo(rn) && flags_ok_setting(insn.set_flags)) {
          if (rd == rn && imm >= 0 && imm <= 255) {
            return f3(0b11, rd, static_cast<unsigned>(imm));
          }
          if (imm >= 0 && imm <= 7) {
            return f2(true, true, static_cast<unsigned>(imm), rn, rd);
          }
        }
        return std::nullopt;
      }
      if (is_lo(rd) && is_lo(rn) && is_lo(rm) &&
          flags_ok_setting(insn.set_flags)) {
        return f2(false, true, rm, rn, rd);
      }
      return std::nullopt;

    case Op::rsb:
      // Only NEG (rsb rd, rn, #0) has a narrow form.
      if (insn.uses_imm && imm == 0 && is_lo(rd) && is_lo(rn) &&
          flags_ok_setting(insn.set_flags)) {
        return f4(kF4Neg, rn, rd);
      }
      return std::nullopt;

    case Op::adc:
    case Op::sbc:
    case Op::and_:
    case Op::orr:
    case Op::eor:
    case Op::bic: {
      if (insn.uses_imm || !is_lo(rd) || !is_lo(rm) || rd != rn ||
          !flags_ok_setting(insn.set_flags)) {
        return std::nullopt;
      }
      int op4 = 0;
      switch (insn.op) {
        case Op::adc: op4 = kF4Adc; break;
        case Op::sbc: op4 = kF4Sbc; break;
        case Op::and_: op4 = kF4And; break;
        case Op::orr: op4 = kF4Orr; break;
        case Op::eor: op4 = kF4Eor; break;
        default: op4 = kF4Bic; break;
      }
      return f4(op4, rm, rd);
    }

    case Op::mul:
      // rd = rd * rm (commutative, so either source may coincide with rd).
      if (insn.uses_imm || !is_lo(rd) || !is_lo(rn) || !is_lo(rm) ||
          !flags_ok_setting(insn.set_flags)) {
        return std::nullopt;
      }
      if (rd == rn) {
        return f4(kF4Mul, rm, rd);
      }
      if (rd == rm) {
        return f4(kF4Mul, rn, rd);
      }
      return std::nullopt;

    case Op::mvn:
      if (insn.uses_imm || !is_lo(rd) || !is_lo(rm) ||
          !flags_ok_setting(insn.set_flags)) {
        return std::nullopt;
      }
      return f4(kF4Mvn, rm, rd);

    case Op::lsl:
    case Op::lsr:
    case Op::asr:
    case Op::ror: {
      if (!flags_ok_setting(insn.set_flags)) {
        return std::nullopt;
      }
      if (insn.uses_imm) {
        if (insn.op == Op::ror || !is_lo(rd) || !is_lo(rn)) {
          return std::nullopt;
        }
        const bool shift_ok =
            insn.op == Op::lsl ? (imm >= 1 && imm <= 31)   // lsl#0 is mov
                               : (imm >= 1 && imm <= 31);
        if (!shift_ok) {
          return std::nullopt;
        }
        const int op2 = insn.op == Op::lsl ? 0b00
                        : insn.op == Op::lsr ? 0b01
                                             : 0b10;
        return f1(op2, static_cast<unsigned>(imm), rn, rd);
      }
      if (!is_lo(rd) || !is_lo(rm) || rd != rn) {
        return std::nullopt;
      }
      int op4 = 0;
      switch (insn.op) {
        case Op::lsl: op4 = kF4Lsl; break;
        case Op::lsr: op4 = kF4Lsr; break;
        case Op::asr: op4 = kF4Asr; break;
        default: op4 = kF4Ror; break;
      }
      return f4(op4, rm, rd);
    }

    case Op::cmp:
      if (insn.uses_imm) {
        if (is_lo(rn) && imm >= 0 && imm <= 255) {
          return f3(0b01, rn, static_cast<unsigned>(imm));
        }
        return std::nullopt;
      }
      if (is_lo(rn) && is_lo(rm)) {
        return f4(kF4Cmp, rm, rn);
      }
      return f5(0b01, rm, rn);

    case Op::cmn:
      if (!insn.uses_imm && is_lo(rn) && is_lo(rm)) {
        return f4(kF4Cmn, rm, rn);
      }
      return std::nullopt;

    case Op::tst:
      if (!insn.uses_imm && is_lo(rn) && is_lo(rm)) {
        return f4(kF4Tst, rm, rn);
      }
      return std::nullopt;

    case Op::ldr:
    case Op::ldrb:
    case Op::ldrh:
    case Op::str:
    case Op::strb:
    case Op::strh:
    case Op::ldrsb:
    case Op::ldrsh: {
      if (insn.addr == AddrMode::offset_reg) {
        if (!is_lo(rd) || !is_lo(rn) || !is_lo(rm)) {
          return std::nullopt;
        }
        int op3 = 0;
        switch (insn.op) {
          case Op::str: op3 = 0; break;
          case Op::strh: op3 = 1; break;
          case Op::strb: op3 = 2; break;
          case Op::ldrsb: op3 = 3; break;
          case Op::ldr: op3 = 4; break;
          case Op::ldrh: op3 = 5; break;
          case Op::ldrb: op3 = 6; break;
          case Op::ldrsh: op3 = 7; break;
          default: return std::nullopt;
        }
        return f7(op3, rm, rn, rd);
      }
      if (insn.addr == AddrMode::offset_imm) {
        if (insn.op == Op::ldrsb || insn.op == Op::ldrsh) {
          return std::nullopt;  // no narrow signed-load immediate form
        }
        const bool load = insn.op == Op::ldr || insn.op == Op::ldrb ||
                          insn.op == Op::ldrh;
        // sp-relative word form.
        if ((insn.op == Op::ldr || insn.op == Op::str) && rn == sp &&
            is_lo(rd) && imm >= 0 && imm <= 1020 && imm % 4 == 0) {
          return static_cast<std::uint16_t>((0b1001u << 12) |
                                            (unsigned(load) << 11) |
                                            (unsigned(rd) << 8) |
                                            (unsigned(imm) >> 2));
        }
        if (!is_lo(rd) || !is_lo(rn)) {
          return std::nullopt;
        }
        if (insn.op == Op::ldr || insn.op == Op::str) {
          if (imm >= 0 && imm <= 124 && imm % 4 == 0) {
            return static_cast<std::uint16_t>(
                (0b011u << 13) | (0u << 12) | (unsigned(load) << 11) |
                ((unsigned(imm) >> 2) << 6) | (unsigned(rn) << 3) |
                unsigned(rd));
          }
          return std::nullopt;
        }
        if (insn.op == Op::ldrb || insn.op == Op::strb) {
          if (imm >= 0 && imm <= 31) {
            return static_cast<std::uint16_t>(
                (0b011u << 13) | (1u << 12) | (unsigned(load) << 11) |
                (unsigned(imm) << 6) | (unsigned(rn) << 3) | unsigned(rd));
          }
          return std::nullopt;
        }
        // Halfword.
        if (imm >= 0 && imm <= 62 && imm % 2 == 0) {
          return static_cast<std::uint16_t>(
              (0b1000u << 12) | (unsigned(load) << 11) |
              ((unsigned(imm) >> 1) << 6) | (unsigned(rn) << 3) |
              unsigned(rd));
        }
        return std::nullopt;
      }
      if (insn.addr == AddrMode::pc_rel) {
        if (insn.op == Op::ldr && is_lo(rd) && disp >= 0 && disp <= 1020 &&
            disp % 4 == 0) {
          return static_cast<std::uint16_t>((0b01001u << 11) |
                                            (unsigned(rd) << 8) |
                                            (unsigned(disp) >> 2));
        }
        return std::nullopt;
      }
      return std::nullopt;
    }

    case Op::adr:
      if (is_lo(rd) && disp >= 0 && disp <= 1020 && disp % 4 == 0) {
        return static_cast<std::uint16_t>((0b1010u << 12) | (0u << 11) |
                                          (unsigned(rd) << 8) |
                                          (unsigned(disp) >> 2));
      }
      return std::nullopt;

    case Op::push: {
      const std::uint16_t allowed = 0x00FF | (1u << lr);
      if ((insn.reglist & ~allowed) != 0 || insn.reglist == 0) {
        return std::nullopt;
      }
      const unsigned r_bit = (insn.reglist >> lr) & 1u;
      return static_cast<std::uint16_t>((0b1011u << 12) | (0u << 11) |
                                        (0b10u << 9) | (r_bit << 8) |
                                        (insn.reglist & 0xFF));
    }
    case Op::pop: {
      const std::uint16_t allowed = 0x00FF | (1u << pc);
      if ((insn.reglist & ~allowed) != 0 || insn.reglist == 0) {
        return std::nullopt;
      }
      const unsigned r_bit = (insn.reglist >> pc) & 1u;
      return static_cast<std::uint16_t>((0b1011u << 12) | (1u << 11) |
                                        (0b10u << 9) | (r_bit << 8) |
                                        (insn.reglist & 0xFF));
    }

    case Op::ldm:
    case Op::stm: {
      if (!insn.writeback || !is_lo(rn) || insn.reglist == 0 ||
          (insn.reglist & ~0x00FFu) != 0) {
        return std::nullopt;
      }
      const bool load = insn.op == Op::ldm;
      return static_cast<std::uint16_t>((0b1100u << 12) |
                                        (unsigned(load) << 11) |
                                        (unsigned(rn) << 8) |
                                        (insn.reglist & 0xFF));
    }

    case Op::b: {
      const std::int64_t rel = disp - 4;  // relative to pc+4
      if (insn.cond == Cond::al) {
        if (rel % 2 == 0 && fits_signed(rel / 2, 11)) {
          return static_cast<std::uint16_t>(
              (0b11100u << 11) | (static_cast<std::uint32_t>(rel / 2) & 0x7FF));
        }
        return std::nullopt;
      }
      if (rel % 2 == 0 && fits_signed(rel / 2, 8)) {
        return static_cast<std::uint16_t>(
            (0b1101u << 12) |
            (unsigned(static_cast<std::uint8_t>(insn.cond)) << 8) |
            (static_cast<std::uint32_t>(rel / 2) & 0xFF));
      }
      return std::nullopt;
    }

    case Op::bx:
      return f5(0b11, rm, 0);

    case Op::cbz:
    case Op::cbnz: {
      if (!b32_mode || !is_lo(rn)) {
        return std::nullopt;
      }
      const std::int64_t rel = disp - 4;
      if (rel < 0 || rel > 126 || rel % 2 != 0) {
        return std::nullopt;
      }
      const unsigned off = static_cast<unsigned>(rel) >> 1;  // 6 bits
      return static_cast<std::uint16_t>(
          (0b1011u << 12) | (unsigned(insn.op == Op::cbnz) << 11) |
          (((off >> 5) & 1u) << 9) | (1u << 8) | ((off & 0x1F) << 3) |
          unsigned(rn));
    }

    case Op::it:
      if (!b32_mode || insn.it_mask == 0) {
        return std::nullopt;
      }
      return static_cast<std::uint16_t>(
          0xBF00u | (unsigned(static_cast<std::uint8_t>(insn.cond)) << 4) |
          insn.it_mask);

    case Op::svc:
      if (imm >= 0 && imm <= 255) {
        return static_cast<std::uint16_t>(0xDF00u | unsigned(imm));
      }
      return std::nullopt;

    case Op::bkpt:
      if (imm >= 0 && imm <= 255) {
        return static_cast<std::uint16_t>(0xBE00u | unsigned(imm));
      }
      return std::nullopt;

    case Op::nop:
      return 0xBF00;
    case Op::wfi:
      return 0xBF30;
    case Op::cps:
      // imm == 1 disables interrupts (cpsid), 0 enables (cpsie).
      return static_cast<std::uint16_t>(0xB660u | (imm ? 1u : 0u));

    default:
      return std::nullopt;
  }
}

std::optional<std::array<std::uint16_t, 2>> encode_bl_pair(std::int64_t disp) {
  const std::int64_t rel = disp - 4;
  if (rel % 2 != 0 || !fits_signed(rel / 2, 22)) {
    return std::nullopt;
  }
  const auto off = static_cast<std::uint32_t>(rel / 2) & 0x3F'FFFF;
  return std::array<std::uint16_t, 2>{
      static_cast<std::uint16_t>((0b11110u << 11) | (off >> 11)),
      static_cast<std::uint16_t>((0b11111u << 11) | (off & 0x7FF))};
}

namespace {

Instruction make(Op op) {
  Instruction i;
  i.op = op;
  return i;
}

bool decode_misc_1011(std::uint16_t hw, bool b32_mode, Instruction& out) {
  // sp adjust: 1011 0000 S iiiiiii
  if ((hw & 0xFF00u) == 0xB000u) {
    const bool is_sub = (hw >> 7) & 1u;
    out = make(is_sub ? Op::sub : Op::add);
    out.rd = sp;
    out.rn = sp;
    out.uses_imm = true;
    out.imm = static_cast<std::int64_t>(hw & 0x7Fu) * 4;
    out.set_flags = SetFlags::no;
    return true;
  }
  // push/pop: 1011 L 10 R rrrrrrrr
  if ((hw & 0xF600u) == 0xB400u) {
    const bool is_pop = (hw >> 11) & 1u;
    const bool r_bit = (hw >> 8) & 1u;
    out = make(is_pop ? Op::pop : Op::push);
    out.reglist = static_cast<std::uint16_t>(hw & 0xFFu);
    if (r_bit) {
      out.reglist |= static_cast<std::uint16_t>(1u << (is_pop ? pc : lr));
    }
    return out.reglist != 0;
  }
  // cbz/cbnz: 1011 o0i1 iiiii nnn (b32 only)
  if (b32_mode && (hw & 0xF500u) == 0xB100u) {
    const bool nz = (hw >> 11) & 1u;
    const unsigned off =
        ((((hw >> 9) & 1u) << 5) | ((hw >> 3) & 0x1Fu)) << 1;
    out = make(nz ? Op::cbnz : Op::cbz);
    out.rn = static_cast<Reg>(hw & 7u);
    out.imm = static_cast<std::int64_t>(off) + 4;
    return true;
  }
  // bkpt: 1011 1110 imm8
  if ((hw & 0xFF00u) == 0xBE00u) {
    out = make(Op::bkpt);
    out.uses_imm = true;
    out.imm = hw & 0xFFu;
    return true;
  }
  // cps: 1011 0110 0110 000D
  if ((hw & 0xFFFEu) == 0xB660u) {
    out = make(Op::cps);
    out.uses_imm = true;
    out.imm = hw & 1u;
    return true;
  }
  // hints / IT: 1011 1111 cccc mmmm
  if ((hw & 0xFF00u) == 0xBF00u) {
    const unsigned mask = hw & 0xFu;
    const unsigned top = (hw >> 4) & 0xFu;
    if (mask == 0) {
      if (top == 0) {
        out = make(Op::nop);
        return true;
      }
      if (top == 3) {
        out = make(Op::wfi);
        return true;
      }
      return false;
    }
    if (!b32_mode || top >= 15) {
      return false;
    }
    out = make(Op::it);
    out.cond = static_cast<Cond>(top);
    out.it_mask = static_cast<std::uint8_t>(mask);
    return true;
  }
  return false;
}

}  // namespace

bool decode16(std::uint16_t hw, bool b32_mode, Instruction& out) {
  if (b32_mode && is_wide_prefix(hw)) {
    return false;
  }
  const unsigned top3 = hw >> 13;
  switch (top3) {
    case 0b000: {
      if (((hw >> 11) & 3u) == 0b11) {
        // F2 add/sub 3-address.
        const bool imm_form = (hw >> 10) & 1u;
        const bool is_sub = (hw >> 9) & 1u;
        out = make(is_sub ? Op::sub : Op::add);
        out.rd = static_cast<Reg>(hw & 7u);
        out.rn = static_cast<Reg>((hw >> 3) & 7u);
        out.set_flags = SetFlags::yes;
        if (imm_form) {
          if (out.rd == out.rn) {
            return false;  // F3 (imm8) is the canonical rd==rn form
          }
          out.uses_imm = true;
          out.imm = (hw >> 6) & 7u;
        } else {
          out.rm = static_cast<Reg>((hw >> 6) & 7u);
        }
        return true;
      }
      // F1 shift immediate.
      const unsigned op2 = (hw >> 11) & 3u;
      const unsigned imm5 = (hw >> 6) & 0x1Fu;
      const Reg src = static_cast<Reg>((hw >> 3) & 7u);
      const Reg rd = static_cast<Reg>(hw & 7u);
      if (op2 == 0b00 && imm5 == 0) {
        out = make(Op::mov);
        out.rd = rd;
        out.rm = src;
        out.set_flags = SetFlags::yes;
        return true;
      }
      if (imm5 == 0) {
        return false;  // lsr/asr #0 not used by this ISA
      }
      out = make(op2 == 0b00 ? Op::lsl : op2 == 0b01 ? Op::lsr : Op::asr);
      out.rd = rd;
      out.rn = src;
      out.uses_imm = true;
      out.imm = imm5;
      out.set_flags = SetFlags::yes;
      return true;
    }

    case 0b001: {
      // F3 mov/cmp/add/sub imm8.
      const unsigned op2 = (hw >> 11) & 3u;
      const Reg r = static_cast<Reg>((hw >> 8) & 7u);
      const std::int64_t imm8 = hw & 0xFFu;
      switch (op2) {
        case 0b00: out = make(Op::mov); out.rd = r; break;
        case 0b01: out = make(Op::cmp); out.rn = r; break;
        case 0b10: out = make(Op::add); out.rd = r; out.rn = r; break;
        default:   out = make(Op::sub); out.rd = r; out.rn = r; break;
      }
      out.uses_imm = true;
      out.imm = imm8;
      out.set_flags = SetFlags::yes;
      return true;
    }

    case 0b010: {
      if ((hw >> 10) == 0b010000u) {
        // F4 two-address ALU.
        const unsigned op4 = (hw >> 6) & 0xFu;
        const Reg rm = static_cast<Reg>((hw >> 3) & 7u);
        const Reg rdn = static_cast<Reg>(hw & 7u);
        static constexpr Op ops[16] = {
            Op::and_, Op::eor, Op::lsl, Op::lsr, Op::asr, Op::adc,
            Op::sbc,  Op::ror, Op::tst, Op::rsb, Op::cmp, Op::cmn,
            Op::orr,  Op::mul, Op::bic, Op::mvn};
        out = make(ops[op4]);
        out.set_flags = SetFlags::yes;
        switch (op4) {
          case kF4Tst:
          case kF4Cmp:
          case kF4Cmn:
            out.rn = rdn;
            out.rm = rm;
            break;
          case kF4Neg:
            out.rd = rdn;
            out.rn = rm;
            out.uses_imm = true;
            out.imm = 0;
            break;
          case kF4Mvn:
            out.rd = rdn;
            out.rm = rm;
            break;
          default:
            out.rd = rdn;
            out.rn = rdn;
            out.rm = rm;
            break;
        }
        return true;
      }
      if ((hw >> 10) == 0b010001u) {
        // F5 hi-register ops / bx.
        const unsigned op2 = (hw >> 8) & 3u;
        const Reg rm = static_cast<Reg>((hw >> 3) & 0xFu);
        const Reg rd = static_cast<Reg>((((hw >> 7) & 1u) << 3) | (hw & 7u));
        switch (op2) {
          case 0b00:
            out = make(Op::add);
            out.rd = rd;
            out.rn = rd;
            out.rm = rm;
            out.set_flags = SetFlags::no;
            return true;
          case 0b01:
            if (is_lo(rd) && is_lo(rm)) {
              return false;  // F4 is the canonical low-register compare
            }
            out = make(Op::cmp);
            out.rn = rd;
            out.rm = rm;
            out.set_flags = SetFlags::yes;
            return true;
          case 0b10:
            out = make(Op::mov);
            out.rd = rd;
            out.rm = rm;
            out.set_flags = SetFlags::no;
            return true;
          default:
            if ((hw & 0x0087u) != 0) {
              return false;
            }
            out = make(Op::bx);
            out.rm = rm;
            return true;
        }
      }
      if ((hw >> 11) == 0b01001u) {
        // F6 pc-relative load.
        out = make(Op::ldr);
        out.rd = static_cast<Reg>((hw >> 8) & 7u);
        out.addr = AddrMode::pc_rel;
        out.imm = static_cast<std::int64_t>(hw & 0xFFu) * 4;
        return true;
      }
      // F7 register-offset load/store.
      {
        const unsigned op3 = (hw >> 9) & 7u;
        static constexpr Op ops[8] = {Op::str,   Op::strh, Op::strb,
                                      Op::ldrsb, Op::ldr,  Op::ldrh,
                                      Op::ldrb,  Op::ldrsh};
        out = make(ops[op3]);
        out.rm = static_cast<Reg>((hw >> 6) & 7u);
        out.rn = static_cast<Reg>((hw >> 3) & 7u);
        out.rd = static_cast<Reg>(hw & 7u);
        out.addr = AddrMode::offset_reg;
        return true;
      }
    }

    case 0b011: {
      // F9 word/byte immediate-offset load/store.
      const bool is_byte = (hw >> 12) & 1u;
      const bool is_load = (hw >> 11) & 1u;
      const unsigned imm5 = (hw >> 6) & 0x1Fu;
      out = make(is_byte ? (is_load ? Op::ldrb : Op::strb)
                         : (is_load ? Op::ldr : Op::str));
      out.rn = static_cast<Reg>((hw >> 3) & 7u);
      out.rd = static_cast<Reg>(hw & 7u);
      out.addr = AddrMode::offset_imm;
      out.imm = is_byte ? imm5 : imm5 * 4;
      return true;
    }

    default:
      break;
  }

  const unsigned top4 = hw >> 12;
  switch (top4) {
    case 0b1000: {
      // F10 halfword immediate-offset.
      const bool is_load = (hw >> 11) & 1u;
      out = make(is_load ? Op::ldrh : Op::strh);
      out.rn = static_cast<Reg>((hw >> 3) & 7u);
      out.rd = static_cast<Reg>(hw & 7u);
      out.addr = AddrMode::offset_imm;
      out.imm = static_cast<std::int64_t>((hw >> 6) & 0x1Fu) * 2;
      return true;
    }
    case 0b1001: {
      // F11 sp-relative word.
      const bool is_load = (hw >> 11) & 1u;
      out = make(is_load ? Op::ldr : Op::str);
      out.rd = static_cast<Reg>((hw >> 8) & 7u);
      out.rn = sp;
      out.addr = AddrMode::offset_imm;
      out.imm = static_cast<std::int64_t>(hw & 0xFFu) * 4;
      return true;
    }
    case 0b1010: {
      // F12 adr / add rd, sp, imm.
      const bool sp_form = (hw >> 11) & 1u;
      const Reg rd = static_cast<Reg>((hw >> 8) & 7u);
      const std::int64_t off = static_cast<std::int64_t>(hw & 0xFFu) * 4;
      if (sp_form) {
        out = make(Op::add);
        out.rd = rd;
        out.rn = sp;
        out.uses_imm = true;
        out.imm = off;
        out.set_flags = SetFlags::no;
      } else {
        out = make(Op::adr);
        out.rd = rd;
        out.imm = off;
      }
      return true;
    }
    case 0b1011:
      return decode_misc_1011(hw, b32_mode, out);
    case 0b1100: {
      // F15 ldm/stm with writeback.
      const bool is_load = (hw >> 11) & 1u;
      out = make(is_load ? Op::ldm : Op::stm);
      out.rn = static_cast<Reg>((hw >> 8) & 7u);
      out.reglist = static_cast<std::uint16_t>(hw & 0xFFu);
      out.writeback = true;
      return out.reglist != 0;
    }
    case 0b1101: {
      const unsigned cond4 = (hw >> 8) & 0xFu;
      if (cond4 == 0xF) {
        out = make(Op::svc);
        out.uses_imm = true;
        out.imm = hw & 0xFFu;
        return true;
      }
      if (cond4 == 0xE) {
        return false;
      }
      out = make(Op::b);
      out.cond = static_cast<Cond>(cond4);
      out.imm = support::sign_extend(hw & 0xFFu, 8) * 2 + 4;
      return true;
    }
    default:
      break;
  }

  if ((hw >> 11) == 0b11100u) {
    out = make(Op::b);
    out.imm = support::sign_extend(hw & 0x7FFu, 11) * 2 + 4;
    return true;
  }
  return false;
}

bool decode_bl_pair(std::uint16_t hw1, std::uint16_t hw2, Instruction& out) {
  if ((hw1 >> 11) != 0b11110u || (hw2 >> 11) != 0b11111u) {
    return false;
  }
  const std::uint32_t off =
      ((static_cast<std::uint32_t>(hw1) & 0x7FFu) << 11) | (hw2 & 0x7FFu);
  out = make(Op::bl);
  out.imm = static_cast<std::int64_t>(support::sign_extend(off, 22)) * 2 + 4;
  return true;
}

}  // namespace aces::isa::detail
