// Shared 16-bit ("narrow") instruction forms.
//
// The N16 encoding is entirely built from these halfword forms; the B32
// encoding reuses them for its 16-bit subset (that reuse is the load-bearing
// design point of the paper: Thumb-2 keeps Thumb's dense forms and adds wide
// ones). Differences in b32 mode:
//   - halfwords with the top-5 prefix 11101/11110/11111 are 32-bit prefixes
//     and never valid 16-bit instructions (so the N16 BL halfword-pair is
//     not available);
//   - cbz/cbnz and it are valid;
//   - bl is not encodable as a pair (B32 has a real 32-bit BL).
// Internal header - not part of the public API.
#ifndef ACES_ISA_CODEC16_H
#define ACES_ISA_CODEC16_H

#include <array>
#include <cstdint>
#include <optional>

#include "isa/isa.h"

namespace aces::isa::detail {

// Encodes `insn` into a single narrow halfword. `disp` follows the codec.h
// conventions. Returns nullopt when no narrow form fits.
[[nodiscard]] std::optional<std::uint16_t> encode16(const Instruction& insn,
                                                    std::int64_t disp,
                                                    bool b32_mode);

// N16-only BL halfword pair (22-bit halfword-scaled displacement).
[[nodiscard]] std::optional<std::array<std::uint16_t, 2>> encode_bl_pair(
    std::int64_t disp);

// Decodes one halfword. Returns false for invalid / not-16-bit patterns.
[[nodiscard]] bool decode16(std::uint16_t hw, bool b32_mode, Instruction& out);

// Decodes the N16 BL pair.
[[nodiscard]] bool decode_bl_pair(std::uint16_t hw1, std::uint16_t hw2,
                                  Instruction& out);

// True when the halfword is a 32-bit-instruction prefix in b32 mode.
[[nodiscard]] constexpr bool is_wide_prefix(std::uint16_t hw) {
  const unsigned top5 = hw >> 11;
  return top5 == 0b11101u || top5 == 0b11110u || top5 == 0b11111u;
}

[[nodiscard]] constexpr bool is_lo(Reg r) { return r < 8; }

// Flag-setting compatibility: narrow ALU forms always set flags, so they
// accept yes/any; forms that never set flags accept no/any.
[[nodiscard]] constexpr bool flags_ok_setting(SetFlags s) {
  return s == SetFlags::yes || s == SetFlags::any;
}
[[nodiscard]] constexpr bool flags_ok_nonsetting(SetFlags s) {
  return s == SetFlags::no || s == SetFlags::any;
}

}  // namespace aces::isa::detail

#endif  // ACES_ISA_CODEC16_H
