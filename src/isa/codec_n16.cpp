// N16: the fixed 16-bit "narrow" encoding (stands in for original Thumb).
//
// All instruction forms come from codec16.h; the only multi-halfword
// construct is the BL prefix/suffix pair (4 bytes), mirroring how Thumb-1
// achieved long calls before Thumb-2 made BL a genuine 32-bit instruction.
#include "isa/codec.h"
#include "isa/codec16.h"
#include "support/check.h"

namespace aces::isa {

namespace {

class N16Codec final : public Codec {
 public:
  [[nodiscard]] Encoding encoding() const override { return Encoding::n16; }
  [[nodiscard]] int alignment() const override { return 2; }

  [[nodiscard]] int size_for(const Instruction& insn,
                             std::int64_t disp) const override {
    if (insn.op == Op::bl) {
      return detail::encode_bl_pair(disp).has_value() ? 4 : 0;
    }
    return detail::encode16(insn, disp, /*b32_mode=*/false).has_value() ? 2
                                                                        : 0;
  }

  void encode(const Instruction& insn, std::int64_t disp, int size,
              std::vector<std::uint8_t>& out) const override {
    if (insn.op == Op::bl) {
      ACES_CHECK(size == 4);
      const auto pair = detail::encode_bl_pair(disp);
      ACES_CHECK_MSG(pair.has_value(), "bl displacement out of N16 range");
      for (const std::uint16_t hw : *pair) {
        out.push_back(static_cast<std::uint8_t>(hw));
        out.push_back(static_cast<std::uint8_t>(hw >> 8));
      }
      return;
    }
    ACES_CHECK(size == 2);
    const auto hw = detail::encode16(insn, disp, /*b32_mode=*/false);
    ACES_CHECK_MSG(hw.has_value(), "instruction not encodable in N16");
    out.push_back(static_cast<std::uint8_t>(*hw));
    out.push_back(static_cast<std::uint8_t>(*hw >> 8));
  }

  [[nodiscard]] int decode(std::span<const std::uint8_t> code,
                           Instruction& out) const override {
    if (code.size() < 2) {
      return 0;
    }
    const std::uint16_t hw1 =
        static_cast<std::uint16_t>(code[0] | (code[1] << 8));
    if ((hw1 >> 11) == 0b11110u) {
      // BL prefix: needs the suffix halfword.
      if (code.size() < 4) {
        return 0;
      }
      const std::uint16_t hw2 =
          static_cast<std::uint16_t>(code[2] | (code[3] << 8));
      return detail::decode_bl_pair(hw1, hw2, out) ? 4 : 0;
    }
    return detail::decode16(hw1, /*b32_mode=*/false, out) ? 2 : 0;
  }
};

const N16Codec kN16Codec;

}  // namespace

const Codec& n16_codec() { return kN16Codec; }

}  // namespace aces::isa
