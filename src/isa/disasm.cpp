#include "isa/disasm.h"

#include <cstdio>

#include "isa/assembler.h"
#include "isa/codec.h"
#include "support/bits.h"

namespace aces::isa {

namespace {

std::string hex(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

std::string reglist_str(std::uint16_t list) {
  std::string out = "{";
  bool first = true;
  for (Reg r = 0; r < 16; ++r) {
    if ((list >> r) & 1u) {
      if (!first) {
        out += ", ";
      }
      out += std::string(reg_name(r));
      first = false;
    }
  }
  return out + "}";
}

bool is_load_store(Op op) {
  switch (op) {
    case Op::ldr:
    case Op::ldrb:
    case Op::ldrh:
    case Op::ldrsb:
    case Op::ldrsh:
    case Op::str:
    case Op::strb:
    case Op::strh:
      return true;
    default:
      return false;
  }
}

std::string it_pattern(std::uint8_t mask, Cond firstcond) {
  // Recover the t/e pattern from the Thumb-style mask.
  std::string out;
  const unsigned fc0 = static_cast<unsigned>(firstcond) & 1u;
  int n = 4;
  for (int b = 0; b < 4; ++b) {
    if ((mask >> b) & 1u) {
      n = 4 - b;
      break;
    }
  }
  for (int k = 1; k < n; ++k) {
    const unsigned bit = (mask >> (4 - k)) & 1u;
    out += (bit == fc0) ? 't' : 'e';
  }
  return out;
}

}  // namespace

std::string disassemble(const Instruction& insn, std::uint32_t addr) {
  std::string name(op_name(insn.op));
  if (insn.op == Op::it) {
    return "it" + it_pattern(insn.it_mask, insn.cond) + " " +
           std::string(cond_name(insn.cond));
  }
  if (insn.cond != Cond::al) {
    name += std::string(cond_name(insn.cond));
  }
  if (insn.set_flags == SetFlags::yes) {
    switch (insn.op) {
      case Op::cmp:
      case Op::cmn:
      case Op::tst:
      case Op::teq:
        break;  // implicit
      default:
        name += "s";
        break;
    }
  }

  const auto rd = std::string(reg_name(insn.rd));
  const auto rn = std::string(reg_name(insn.rn));
  const auto rm = std::string(reg_name(insn.rm));

  switch (insn.op) {
    case Op::mov:
    case Op::mvn:
    case Op::movw:
    case Op::movt:
      return name + " " + rd + ", " +
             (insn.uses_imm ? "#" + std::to_string(insn.imm) : rm);
    case Op::cmp:
    case Op::cmn:
    case Op::tst:
    case Op::teq:
      return name + " " + rn + ", " +
             (insn.uses_imm ? "#" + std::to_string(insn.imm) : rm);
    case Op::rbit:
    case Op::rev:
    case Op::rev16:
    case Op::clz:
    case Op::sxtb:
    case Op::sxth:
    case Op::uxtb:
    case Op::uxth:
      return name + " " + rd + ", " + rm;
    case Op::mla:
      return name + " " + rd + ", " + rn + ", " + rm + ", " +
             std::string(reg_name(insn.ra));
    case Op::bfc:
      return name + " " + rd + ", #" + std::to_string(insn.imm) + ", #" +
             std::to_string(insn.width);
    case Op::bfi:
    case Op::ubfx:
    case Op::sbfx:
      return name + " " + rd + ", " + rn + ", #" + std::to_string(insn.imm) +
             ", #" + std::to_string(insn.width);
    case Op::adr:
      return name + " " + rd + ", " +
             hex(static_cast<std::uint32_t>(
                 support::align_down(addr + 4, 4) + insn.imm));
    case Op::ldm:
    case Op::stm:
      return name + " " + rn + (insn.writeback ? "!" : "") + ", " +
             reglist_str(insn.reglist);
    case Op::push:
    case Op::pop:
      return name + " " + reglist_str(insn.reglist);
    case Op::b:
    case Op::bl:
      return name + " " +
             hex(static_cast<std::uint32_t>(addr + insn.imm));
    case Op::cbz:
    case Op::cbnz:
      return name + " " + rn + ", " +
             hex(static_cast<std::uint32_t>(addr + insn.imm));
    case Op::bx:
      return name + " " + rm;
    case Op::tbb:
      return name + " [" + rn + ", " + rm + "]";
    case Op::svc:
    case Op::bkpt:
      return name + " #" + std::to_string(insn.imm);
    case Op::cps:
      return insn.imm ? "cpsid" : "cpsie";
    case Op::nop:
    case Op::wfi:
      return name;
    default:
      break;
  }

  if (is_load_store(insn.op)) {
    switch (insn.addr) {
      case AddrMode::offset_imm:
        return name + " " + rd + ", [" + rn +
               (insn.imm != 0 ? ", #" + std::to_string(insn.imm) : "") + "]";
      case AddrMode::offset_reg:
        return name + " " + rd + ", [" + rn + ", " + rm + "]";
      case AddrMode::pc_rel:
        return name + " " + rd + ", " +
               hex(static_cast<std::uint32_t>(
                   support::align_down(addr + 4, 4) + insn.imm));
      default:
        break;
    }
  }

  // Remaining data-processing forms: rd, rn, rm|imm.
  return name + " " + rd + ", " + rn + ", " +
         (insn.uses_imm ? "#" + std::to_string(insn.imm) : rm);
}

std::string disassemble_image(const Image& image) {
  const Codec& codec = codec_for(image.encoding);
  std::string out;
  std::uint32_t offset = 0;
  while (offset < image.size()) {
    Instruction insn;
    const int n = codec.decode(
        std::span(image.bytes).subspan(offset), insn);
    if (n == 0) {
      out += "; " + std::to_string(image.size() - offset) +
             " byte(s) of data/pool\n";
      break;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%08x:  ", image.base + offset);
    out += buf;
    for (int k = 0; k < n; ++k) {
      std::snprintf(buf, sizeof buf, "%02x",
                    image.bytes[offset + static_cast<std::uint32_t>(k)]);
      out += buf;
    }
    out += n == 2 ? "      " : "  ";
    out += disassemble(insn, image.base + offset);
    out += '\n';
    offset += static_cast<std::uint32_t>(n);
  }
  return out;
}

}  // namespace aces::isa
