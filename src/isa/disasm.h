// Textual disassembly of UC32 instructions and images, used by the examples,
// the debugger model and test diagnostics.
#ifndef ACES_ISA_DISASM_H
#define ACES_ISA_DISASM_H

#include <cstdint>
#include <string>

#include "isa/isa.h"

namespace aces::isa {

struct Image;

// Formats a single decoded instruction. `addr` is used to resolve
// pc-relative and branch targets to absolute addresses.
[[nodiscard]] std::string disassemble(const Instruction& insn,
                                      std::uint32_t addr = 0);

// Walks an image from its base, one instruction per line
// ("address: bytes  mnemonic ...\n"). Stops at the first undecodable
// position (e.g. a literal pool) and notes the remaining byte count.
[[nodiscard]] std::string disassemble_image(const Image& image);

}  // namespace aces::isa

#endif  // ACES_ISA_DISASM_H
