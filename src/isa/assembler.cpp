#include "isa/assembler.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace aces::isa {

using support::align_up;

namespace {

[[nodiscard]] bool is_branch_op(Op op) {
  return op == Op::b || op == Op::bl || op == Op::cbz || op == Op::cbnz;
}

// Worst-case byte size of a branch while its displacement is still unknown
// (first relaxation iterations); the final encode pass validates ranges.
[[nodiscard]] int worst_branch_size(Encoding enc, const Instruction& insn) {
  switch (enc) {
    case Encoding::w32:
      return 4;
    case Encoding::n16:
      // A conditional branch may expand to inverted-branch-over-branch.
      return (insn.op == Op::b && insn.cond != Cond::al) ? 4 : 4;
    case Encoding::b32:
      // cbz/cbnz may expand to cmp #0 + b<cc> (2 + 4).
      return (insn.op == Op::cbz || insn.op == Op::cbnz) ? 6 : 4;
  }
  return 4;
}

}  // namespace

Assembler::Assembler(Encoding enc, std::uint32_t text_base)
    : codec_(codec_for(enc)), encoding_(enc), base_(text_base) {
  ACES_CHECK_MSG(text_base % 4 == 0, "text base must be word aligned");
  pool_values_.emplace_back();
}

Label Assembler::new_label() {
  const auto l = static_cast<Label>(label_addr_.size());
  label_addr_.push_back(0);
  label_bound_.push_back(false);
  return l;
}

void Assembler::bind(Label l) {
  ACES_CHECK(l >= 0 && static_cast<std::size_t>(l) < label_addr_.size());
  ACES_CHECK_MSG(!label_bound_[static_cast<std::size_t>(l)],
                 "label bound twice");
  label_bound_[static_cast<std::size_t>(l)] = true;
  Item item;
  item.kind = Kind::bind;
  item.label = l;
  items_.push_back(std::move(item));
}

Label Assembler::bound_label() {
  const Label l = new_label();
  bind(l);
  return l;
}

void Assembler::ins(const Instruction& insn) {
  ACES_CHECK_MSG(!is_branch_op(insn.op),
                 "use branch() for label-targeting instructions");
  ACES_CHECK_MSG(insn.addr != AddrMode::pc_rel,
                 "use load_literal() for pc-relative loads");
  Item item;
  item.kind = Kind::insn;
  item.insn = insn;
  items_.push_back(std::move(item));
}

void Assembler::branch(const Instruction& insn, Label target) {
  ACES_CHECK(is_branch_op(insn.op));
  ACES_CHECK(target >= 0 &&
             static_cast<std::size_t>(target) < label_addr_.size());
  Item item;
  item.kind = Kind::branch;
  item.insn = insn;
  item.label = target;
  items_.push_back(std::move(item));
}

void Assembler::b(Label target, Cond cond) {
  Instruction i;
  i.op = Op::b;
  i.cond = cond;
  branch(i, target);
}

void Assembler::bl(Label target) {
  Instruction i;
  i.op = Op::bl;
  branch(i, target);
}

void Assembler::load_literal(Reg rd, std::uint32_t value) {
  Item item;
  item.kind = Kind::lit_load;
  item.insn.op = Op::ldr;
  item.insn.rd = rd;
  item.insn.addr = AddrMode::pc_rel;
  item.value = value;
  item.pool_index = open_pool_;
  items_.push_back(std::move(item));
  ++pending_lits_;
}

void Assembler::adr(Reg rd, Label target) {
  Item item;
  item.kind = Kind::adr_label;
  item.insn.op = Op::adr;
  item.insn.rd = rd;
  item.label = target;
  items_.push_back(std::move(item));
}

void Assembler::pool() {
  Item item;
  item.kind = Kind::pool;
  item.pool_index = open_pool_;
  items_.push_back(std::move(item));
  ++open_pool_;
  pool_values_.emplace_back();
  pending_lits_ = 0;
}

void Assembler::pool_island() {
  if (pending_lits_ == 0) {
    return;
  }
  const Label skip = new_label();
  b(skip);
  pool();
  bind(skip);
}

void Assembler::jump_table(Label tbb_site, std::vector<Label> targets) {
  ACES_CHECK_MSG(!targets.empty(), "empty jump table");
  Item item;
  item.kind = Kind::jump_table;
  item.label = tbb_site;
  item.targets = std::move(targets);
  items_.push_back(std::move(item));
}

void Assembler::align(std::uint32_t n) {
  ACES_CHECK(support::is_power_of_two(n));
  Item item;
  item.kind = Kind::align;
  item.value = n;
  items_.push_back(std::move(item));
}

void Assembler::word(std::uint32_t w) {
  Item item;
  item.kind = Kind::data;
  item.data = {static_cast<std::uint8_t>(w), static_cast<std::uint8_t>(w >> 8),
               static_cast<std::uint8_t>(w >> 16),
               static_cast<std::uint8_t>(w >> 24)};
  items_.push_back(std::move(item));
}

void Assembler::half(std::uint16_t h) {
  Item item;
  item.kind = Kind::data;
  item.data = {static_cast<std::uint8_t>(h),
               static_cast<std::uint8_t>(h >> 8)};
  items_.push_back(std::move(item));
}

void Assembler::raw(std::span<const std::uint8_t> data) {
  Item item;
  item.kind = Kind::data;
  item.data.assign(data.begin(), data.end());
  items_.push_back(std::move(item));
}

void Assembler::finalize_pools() {
  // Assign each literal a deduplicated slot in its pool.
  for (Item& item : items_) {
    if (item.kind != Kind::lit_load) {
      continue;
    }
    auto& values = pool_values_[static_cast<std::size_t>(item.pool_index)];
    const auto it = std::find(values.begin(), values.end(), item.value);
    if (it == values.end()) {
      item.slot = static_cast<int>(values.size());
      values.push_back(item.value);
    } else {
      item.slot = static_cast<int>(it - values.begin());
    }
  }
  pool_addr_.assign(pool_values_.size(), 0);
}

std::int64_t Assembler::branch_disp(const Item& item) const {
  return static_cast<std::int64_t>(
             label_addr_[static_cast<std::size_t>(item.label)]) -
         static_cast<std::int64_t>(item.addr);
}

bool Assembler::compute_layout() {
  bool changed = false;
  std::uint32_t addr = base_;
  for (Item& item : items_) {
    item.addr = addr;
    int size = item.size;
    switch (item.kind) {
      case Kind::bind:
        if (label_addr_[static_cast<std::size_t>(item.label)] != addr) {
          label_addr_[static_cast<std::size_t>(item.label)] = addr;
          changed = true;
        }
        size = 0;
        break;

      case Kind::insn: {
        const int s = codec_.size_for(item.insn, 0);
        ACES_CHECK_MSG(s != 0,
                       std::string("instruction not encodable in ") +
                           std::string(encoding_name(encoding_)) + ": " +
                           std::string(op_name(item.insn.op)));
        size = s;
        break;
      }

      case Kind::branch: {
        if (first_pass_) {
          // Label addresses are unknown until one full layout pass has run;
          // seed every branch with its smallest form and let the grow-only
          // iterations correct it.
          size = encoding_ == Encoding::w32 ? 4
                 : item.insn.op == Op::bl   ? 4
                                            : 2;
          break;
        }
        const std::int64_t disp = branch_disp(item);
        const bool expandable = item.insn.op == Op::cbz ||
                                item.insn.op == Op::cbnz ||
                                (item.insn.op == Op::b &&
                                 item.insn.cond != Cond::al);
        if (!item.expanded) {
          const int native = codec_.size_for(item.insn, disp);
          if (native != 0) {
            size = std::max(item.size, native);
            break;
          }
          if (!expandable) {
            // b/bl out of range: keep the worst native size; the encode
            // pass throws if the displacement never comes back into range.
            size = std::max(item.size, worst_branch_size(encoding_, item.insn));
            break;
          }
          item.expanded = true;
        }
        // Expanded form sizing.
        int expanded_size = 0;
        if (item.insn.op == Op::cbz || item.insn.op == Op::cbnz) {
          const Instruction cmp0 = ins_cmp_imm(item.insn.rn, 0);
          const int c = codec_.size_for(cmp0, 0);
          Instruction bc;
          bc.op = Op::b;
          bc.cond = item.insn.op == Op::cbz ? Cond::eq : Cond::ne;
          const int bsz = codec_.size_for(bc, disp - c);
          if (c != 0 && bsz != 0) {
            expanded_size = c + bsz;
          }
        } else {
          Instruction ball;
          ball.op = Op::b;
          const int skip_size = encoding_ == Encoding::w32 ? 4 : 2;
          const int inner = codec_.size_for(ball, disp - skip_size);
          if (inner != 0) {
            expanded_size = skip_size + inner;
          }
        }
        size = std::max(item.size,
                        expanded_size != 0
                            ? expanded_size
                            : worst_branch_size(encoding_, item.insn));
        break;
      }

      case Kind::lit_load: {
        const std::uint32_t slot_addr =
            pool_addr_[static_cast<std::size_t>(item.pool_index)] +
            4u * static_cast<std::uint32_t>(item.slot);
        const std::int64_t disp =
            static_cast<std::int64_t>(slot_addr) -
            static_cast<std::int64_t>(support::align_down(addr + 4, 4));
        const int s = codec_.size_for(item.insn, std::max<std::int64_t>(disp, 0));
        size = std::max(item.size, s != 0 ? s : (encoding_ == Encoding::w32 ? 4 : 2));
        break;
      }

      case Kind::adr_label: {
        const std::int64_t disp =
            static_cast<std::int64_t>(
                label_addr_[static_cast<std::size_t>(item.label)]) -
            static_cast<std::int64_t>(support::align_down(addr + 4, 4));
        const int s = codec_.size_for(item.insn, std::max<std::int64_t>(disp, 0));
        size = std::max(item.size, s != 0 ? s : (encoding_ == Encoding::w32 ? 4 : 2));
        break;
      }

      case Kind::pool: {
        const auto& values =
            pool_values_[static_cast<std::size_t>(item.pool_index)];
        if (values.empty()) {
          size = 0;
          break;
        }
        const std::uint32_t aligned = static_cast<std::uint32_t>(
            align_up(addr, 4));
        pool_addr_[static_cast<std::size_t>(item.pool_index)] = aligned;
        size = static_cast<int>(aligned - addr) +
               4 * static_cast<int>(values.size());
        break;
      }

      case Kind::jump_table:
        size = static_cast<int>(align_up(item.targets.size(), 2));
        break;

      case Kind::align:
        size = static_cast<int>(align_up(addr, item.value) - addr);
        break;

      case Kind::data:
        size = static_cast<int>(item.data.size());
        break;
    }
    if (size != item.size) {
      item.size = size;
      changed = true;
    }
    addr += static_cast<std::uint32_t>(item.size);
  }
  return changed;
}

void Assembler::encode_branch(const Item& item,
                              std::vector<std::uint8_t>& out) {
  const std::int64_t disp = branch_disp(item);
  if (!item.expanded) {
    const int native = codec_.size_for(item.insn, disp);
    ACES_CHECK_MSG(native != 0 && native <= item.size,
                   "branch out of range after relaxation");
    // Encode in exactly item.size bytes (the wide form covers a short
    // displacement when relaxation settled on the wide size).
    codec_.encode(item.insn, disp, item.size, out);
    return;
  }
  if (item.insn.op == Op::cbz || item.insn.op == Op::cbnz) {
    const Instruction cmp0 = ins_cmp_imm(item.insn.rn, 0);
    const int c = codec_.size_for(cmp0, 0);
    Instruction bc;
    bc.op = Op::b;
    bc.cond = item.insn.op == Op::cbz ? Cond::eq : Cond::ne;
    const int bsz = item.size - c;
    ACES_CHECK_MSG(codec_.size_for(bc, disp - c) != 0 &&
                       codec_.size_for(bc, disp - c) <= bsz,
                   "cbz expansion out of range");
    codec_.encode(cmp0, 0, c, out);
    codec_.encode(bc, disp - c, bsz, out);
    return;
  }
  ACES_CHECK(item.insn.op == Op::b && item.insn.cond != Cond::al);
  Instruction binv;
  binv.op = Op::b;
  binv.cond = invert(item.insn.cond);
  Instruction ball;
  ball.op = Op::b;
  const int skip_size = encoding_ == Encoding::w32 ? 4 : 2;
  const int inner_size = item.size - skip_size;
  ACES_CHECK_MSG(codec_.size_for(ball, disp - skip_size) != 0 &&
                     codec_.size_for(ball, disp - skip_size) <= inner_size,
                 "conditional branch expansion out of range");
  // The inverted branch skips over the unconditional inner branch.
  codec_.encode(binv, skip_size + inner_size, skip_size, out);
  codec_.encode(ball, disp - skip_size, inner_size, out);
}

void Assembler::encode_all(std::vector<std::uint8_t>& out) {
  for (const Item& item : items_) {
    const std::size_t before = out.size();
    switch (item.kind) {
      case Kind::bind:
        break;
      case Kind::insn:
        codec_.encode(item.insn, 0, item.size, out);
        break;
      case Kind::branch:
        encode_branch(item, out);
        break;
      case Kind::lit_load: {
        const std::uint32_t slot_addr =
            pool_addr_[static_cast<std::size_t>(item.pool_index)] +
            4u * static_cast<std::uint32_t>(item.slot);
        const std::int64_t disp =
            static_cast<std::int64_t>(slot_addr) -
            static_cast<std::int64_t>(support::align_down(item.addr + 4, 4));
        ACES_CHECK_MSG(disp >= 0, "literal pool precedes its load");
        ACES_CHECK_MSG(codec_.size_for(item.insn, disp) != 0 &&
                           codec_.size_for(item.insn, disp) <= item.size,
                       "literal pool out of range — insert pool() barriers");
        codec_.encode(item.insn, disp, item.size, out);
        break;
      }
      case Kind::adr_label: {
        const std::int64_t disp =
            static_cast<std::int64_t>(
                label_addr_[static_cast<std::size_t>(item.label)]) -
            static_cast<std::int64_t>(support::align_down(item.addr + 4, 4));
        ACES_CHECK_MSG(disp >= 0 && codec_.size_for(item.insn, disp) != 0 &&
                           codec_.size_for(item.insn, disp) <= item.size,
                       "adr target out of range");
        codec_.encode(item.insn, disp, item.size, out);
        break;
      }
      case Kind::pool: {
        const auto& values =
            pool_values_[static_cast<std::size_t>(item.pool_index)];
        if (values.empty()) {
          break;
        }
        const std::uint32_t aligned =
            pool_addr_[static_cast<std::size_t>(item.pool_index)];
        for (std::uint32_t a = item.addr; a < aligned; ++a) {
          out.push_back(0);
        }
        for (const std::uint32_t v : values) {
          out.push_back(static_cast<std::uint8_t>(v));
          out.push_back(static_cast<std::uint8_t>(v >> 8));
          out.push_back(static_cast<std::uint8_t>(v >> 16));
          out.push_back(static_cast<std::uint8_t>(v >> 24));
        }
        break;
      }
      case Kind::jump_table: {
        const std::uint32_t site =
            label_addr_[static_cast<std::size_t>(item.label)];
        for (const Label t : item.targets) {
          const std::int64_t delta =
              static_cast<std::int64_t>(
                  label_addr_[static_cast<std::size_t>(t)]) -
              (static_cast<std::int64_t>(site) + 4);
          ACES_CHECK_MSG(delta >= 0 && delta % 2 == 0 && delta / 2 <= 255,
                         "tbb table entry out of range");
          out.push_back(static_cast<std::uint8_t>(delta / 2));
        }
        if (item.targets.size() % 2 != 0) {
          out.push_back(0);
        }
        break;
      }
      case Kind::align:
      {
        for (int k = 0; k < item.size; ++k) {
          out.push_back(0);
        }
        break;
      }
      case Kind::data:
        out.insert(out.end(), item.data.begin(), item.data.end());
        break;
    }
    ACES_CHECK_MSG(out.size() - before == static_cast<std::size_t>(item.size),
                   "emitted size mismatch for item");
  }
}

Image Assembler::assemble() {
  ACES_CHECK_MSG(!assembled_, "assemble() called twice");
  assembled_ = true;
  // Close any open literal pool.
  if (!items_.empty()) {
    pool();
  }
  for (std::size_t l = 0; l < label_bound_.size(); ++l) {
    ACES_CHECK_MSG(label_bound_[l], "unbound label " + std::to_string(l));
  }
  finalize_pools();

  bool changed = true;
  int iterations = 0;
  while (changed) {
    changed = compute_layout();
    first_pass_ = false;
    ACES_CHECK_MSG(++iterations < 64, "assembler relaxation did not converge");
  }

  Image image;
  image.encoding = encoding_;
  image.base = base_;
  encode_all(image.bytes);
  return image;
}

std::uint32_t Assembler::label_address(Label l) const {
  ACES_CHECK(assembled_);
  ACES_CHECK(l >= 0 && static_cast<std::size_t>(l) < label_addr_.size());
  return label_addr_[static_cast<std::size_t>(l)];
}

}  // namespace aces::isa
