// UC32: the clean-room unified instruction set at the heart of the
// reproduction.
//
// The paper's central claim (Table 1 / Figure 1) is about one *architecture*
// with three *encodings*:
//   - W32  ("wide")    — fixed 32-bit, 3-address, fully predicated; stands in
//                        for the classic ARM encoding.
//   - N16  ("narrow")  — fixed 16-bit, 2-address, r0..r7, 8-bit immediates;
//                        stands in for the original Thumb encoding.
//   - B32  ("blended") — mixed 16/32-bit stream adding MOVW/MOVT, bitfield
//                        ops, hardware divide, IT blocks, compare-and-branch
//                        and table branch; stands in for Thumb-2.
//
// This header defines the encoding-independent instruction model. Encoders /
// decoders for each of the three encodings live in codec_*.cpp, and the
// shared executor in cpu/.
#ifndef ACES_ISA_ISA_H
#define ACES_ISA_ISA_H

#include <cstdint>
#include <string_view>

namespace aces::isa {

// ----- Registers ------------------------------------------------------------

using Reg = std::uint8_t;  // 0..15

inline constexpr Reg r0 = 0, r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6,
                     r7 = 7, r8 = 8, r9 = 9, r10 = 10, r11 = 11, r12 = 12;
inline constexpr Reg sp = 13;
inline constexpr Reg lr = 14;
inline constexpr Reg pc = 15;

inline constexpr Reg kNoReg = 0xFF;

[[nodiscard]] std::string_view reg_name(Reg r);

// ----- Condition codes ------------------------------------------------------

enum class Cond : std::uint8_t {
  eq = 0,   // Z
  ne = 1,   // !Z
  cs = 2,   // C
  cc = 3,   // !C
  mi = 4,   // N
  pl = 5,   // !N
  vs = 6,   // V
  vc = 7,   // !V
  hi = 8,   // C && !Z
  ls = 9,   // !C || Z
  ge = 10,  // N == V
  lt = 11,  // N != V
  gt = 12,  // !Z && N == V
  le = 13,  // Z || N != V
  al = 14,  // always
};

[[nodiscard]] Cond invert(Cond c);
[[nodiscard]] std::string_view cond_name(Cond c);

// ----- Opcodes ---------------------------------------------------------------

enum class Op : std::uint8_t {
  // Data processing (rd, rn, rm|imm). mov/mvn ignore rn.
  add, adc, sub, sbc, rsb, and_, orr, eor, bic, mov, mvn,
  // Shifts (rd, rn, rm|imm).
  lsl, lsr, asr, ror,
  // Compares (rn, rm|imm) — always write flags, no destination.
  cmp, cmn, tst, teq,
  // Multiply / divide. mla is rd = rn*rm + ra. Divides are B32-native only.
  mul, mla, sdiv, udiv,
  // 16-bit immediate builders (B32-only) — the §2.2 literal-pool killers.
  movw, movt,
  // Bitfield ops (B32-only): imm = lsb, width = field width.
  bfi, bfc, ubfx, sbfx,
  // Bit/byte mirrors and leading-zero count (B32-only).
  rbit, rev, rev16, clz,
  // Extend (B32-only).
  sxtb, sxth, uxtb, uxth,
  // Loads / stores: addressing per AddrMode (imm offset, reg offset, pc-rel).
  ldr, ldrb, ldrh, ldrsb, ldrsh, str, strb, strh,
  // PC-relative address formation (rd = align4(pc+4) + imm).
  adr,
  // Multiple transfer, increment-after; writeback optional. push/pop use sp.
  ldm, stm, push, pop,
  // Branches. b/bl/cbz/cbnz/tbb use the builder's label machinery.
  b, bl, bx, cbz, cbnz, tbb,
  // If-then predication block (B32-only 16-bit instruction).
  it,
  // System.
  nop, svc, bkpt, cps, wfi,
};

[[nodiscard]] std::string_view op_name(Op op);

// ----- Instruction -----------------------------------------------------------

enum class AddrMode : std::uint8_t {
  none,
  offset_imm,  // [rn, #imm]
  offset_reg,  // [rn, rm]
  pc_rel,      // [align4(pc+4) + #imm]  (literal pool load)
};

// Whether a data-processing instruction updates NZCV. `any` is a lowering
// hint: the flags are dead afterwards, so the encoder may pick whichever
// form is densest (16-bit narrow ALU forms always set flags, like Thumb).
// Decoders never produce `any`.
enum class SetFlags : std::uint8_t { no, yes, any };

struct Instruction {
  Op op = Op::nop;
  Cond cond = Cond::al;        // encoded predicate (W32); IT supplies it in B32
  SetFlags set_flags = SetFlags::no;
  Reg rd = 0;
  Reg rn = 0;
  Reg rm = 0;
  Reg ra = 0;                  // accumulator for mla
  bool uses_imm = false;       // operand2 is `imm` rather than rm
  std::int64_t imm = 0;        // immediate / branch offset / bitfield lsb
  std::uint8_t width = 0;      // bitfield width (1..32)
  std::uint16_t reglist = 0;   // ldm/stm/push/pop
  bool writeback = false;      // ldm/stm base writeback
  AddrMode addr = AddrMode::none;
  std::uint8_t it_mask = 0;    // IT block pattern (4-bit, Thumb layout)

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

// ----- Convenience factories (used by the lowering and by tests) -------------

[[nodiscard]] Instruction ins_rrr(Op op, Reg rd, Reg rn, Reg rm,
                                  SetFlags s = SetFlags::no);
[[nodiscard]] Instruction ins_rri(Op op, Reg rd, Reg rn, std::int64_t imm,
                                  SetFlags s = SetFlags::no);
[[nodiscard]] Instruction ins_mov_imm(Reg rd, std::int64_t imm,
                                      SetFlags s = SetFlags::no);
[[nodiscard]] Instruction ins_mov_reg(Reg rd, Reg rm,
                                      SetFlags s = SetFlags::no);
[[nodiscard]] Instruction ins_cmp_imm(Reg rn, std::int64_t imm);
[[nodiscard]] Instruction ins_cmp_reg(Reg rn, Reg rm);
[[nodiscard]] Instruction ins_ldst_imm(Op op, Reg rd, Reg rn,
                                       std::int64_t imm);
[[nodiscard]] Instruction ins_ldst_reg(Op op, Reg rd, Reg rn, Reg rm);
[[nodiscard]] Instruction ins_push(std::uint16_t reglist);
[[nodiscard]] Instruction ins_pop(std::uint16_t reglist);
[[nodiscard]] Instruction ins_ret();  // bx lr
[[nodiscard]] Instruction ins_it(Cond firstcond, std::string_view pattern);

// ----- Encodings --------------------------------------------------------------

enum class Encoding : std::uint8_t {
  w32,  // wide fixed 32-bit
  n16,  // narrow fixed 16-bit
  b32,  // blended 16/32-bit
};

[[nodiscard]] std::string_view encoding_name(Encoding e);

// Flag evaluation shared by the executor and tests.
struct Flags {
  bool n = false, z = false, c = false, v = false;
  friend bool operator==(const Flags&, const Flags&) = default;
};

[[nodiscard]] inline bool cond_holds(Cond c, const Flags& f) {
  switch (c) {
    case Cond::eq: return f.z;
    case Cond::ne: return !f.z;
    case Cond::cs: return f.c;
    case Cond::cc: return !f.c;
    case Cond::mi: return f.n;
    case Cond::pl: return !f.n;
    case Cond::vs: return f.v;
    case Cond::vc: return !f.v;
    case Cond::hi: return f.c && !f.z;
    case Cond::ls: return !f.c || f.z;
    case Cond::ge: return f.n == f.v;
    case Cond::lt: return f.n != f.v;
    case Cond::gt: return !f.z && f.n == f.v;
    case Cond::le: return f.z || f.n != f.v;
    case Cond::al: return true;
  }
  return true;
}

}  // namespace aces::isa

#endif  // ACES_ISA_ISA_H
