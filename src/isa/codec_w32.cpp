// W32: the fixed 32-bit "wide" encoding (stands in for classic ARM).
//
// Word layout (little-endian storage):
//   [31:28] cond   (al = 14; 15 reserved)
//   [27:26] class:
//     00 dp-reg : [25:21] op5, [20] S, [19:16] rd, [15:12] rn, [11:8] ra,
//                 [3:0] rm
//     01 dp-imm : [25:21] op5, [20] S, [19:16] rd, [15:12] rn,
//                 [11:0] modified-imm (imm8 ror 2*rot4)
//     10 mem    : [25] reg-form, [24:21] op4, [19:16] rd, [15:12] rn,
//                 [11:0] imm12 | [3:0] rm
//     11 other  : [25:24] sub:
//        00 branch: [23:22] kind (0 b, 1 bl, 2 bx, 3 svc), [21:0] simm22
//                   (word-scaled, relative to pc+8) / rm / imm22
//        01 multi : [23:21] mop (0 ldm, 1 stm, 2 push, 3 pop), [20] W,
//                   [19:16] rn, [15:0] reglist
//        10 system: [23:20] sop (0 nop, 1 bkpt imm16, 2 cps, 3 wfi)
//
// Everything is predicated via the cond field — the classic ARM property the
// paper contrasts with Thumb's branch-only conditionality.
#include "isa/codec.h"
#include "support/bits.h"
#include "support/check.h"

namespace aces::isa {

using support::bits;
using support::fits_signed;

namespace {

// op5 numbers for data-processing.
constexpr unsigned kOpAnd = 0, kOpEor = 1, kOpSub = 2, kOpRsb = 3, kOpAdd = 4,
                   kOpAdc = 5, kOpSbc = 6, kOpOrr = 7, kOpBic = 8, kOpMov = 9,
                   kOpMvn = 10, kOpCmp = 11, kOpCmn = 12, kOpTst = 13,
                   kOpTeq = 14, kOpMul = 15, kOpMla = 16, kOpLsl = 17,
                   kOpLsr = 18, kOpAsr = 19, kOpRor = 20;

constexpr unsigned kMemLdr = 0, kMemLdrb = 1, kMemLdrh = 2, kMemLdrsb = 3,
                   kMemLdrsh = 4, kMemStr = 5, kMemStrb = 6, kMemStrh = 7,
                   kMemLdrPc = 8, kMemAdr = 9;

std::optional<unsigned> dp_op5(Op op) {
  switch (op) {
    case Op::and_: return kOpAnd;
    case Op::eor: return kOpEor;
    case Op::sub: return kOpSub;
    case Op::rsb: return kOpRsb;
    case Op::add: return kOpAdd;
    case Op::adc: return kOpAdc;
    case Op::sbc: return kOpSbc;
    case Op::orr: return kOpOrr;
    case Op::bic: return kOpBic;
    case Op::mov: return kOpMov;
    case Op::mvn: return kOpMvn;
    case Op::cmp: return kOpCmp;
    case Op::cmn: return kOpCmn;
    case Op::tst: return kOpTst;
    case Op::teq: return kOpTeq;
    case Op::mul: return kOpMul;
    case Op::mla: return kOpMla;
    case Op::lsl: return kOpLsl;
    case Op::lsr: return kOpLsr;
    case Op::asr: return kOpAsr;
    case Op::ror: return kOpRor;
    default: return std::nullopt;
  }
}

std::optional<unsigned> mem_op4(Op op) {
  switch (op) {
    case Op::ldr: return kMemLdr;
    case Op::ldrb: return kMemLdrb;
    case Op::ldrh: return kMemLdrh;
    case Op::ldrsb: return kMemLdrsb;
    case Op::ldrsh: return kMemLdrsh;
    case Op::str: return kMemStr;
    case Op::strb: return kMemStrb;
    case Op::strh: return kMemStrh;
    default: return std::nullopt;
  }
}

constexpr std::uint32_t with_cond(Cond c, std::uint32_t word) {
  return (static_cast<std::uint32_t>(c) << 28) | word;
}

// Builds the encoded word, or nullopt when unrepresentable.
std::optional<std::uint32_t> build_word(const Instruction& insn,
                                        std::int64_t disp) {
  const auto cond = insn.cond;
  const bool s_bit = insn.set_flags == SetFlags::yes;

  if (const auto op5 = dp_op5(insn.op)) {
    const bool is_compare = insn.op == Op::cmp || insn.op == Op::cmn ||
                            insn.op == Op::tst || insn.op == Op::teq;
    const bool s = is_compare ? true : s_bit;
    const Reg rd = is_compare ? 0 : insn.rd;
    // mul/mla have no immediate form in W32 (as in classic ARM).
    if (insn.uses_imm) {
      if (insn.op == Op::mul || insn.op == Op::mla) {
        return std::nullopt;
      }
      const auto field = encode_modified_imm(
          static_cast<std::uint32_t>(insn.imm));
      if (!field || insn.imm < 0) {
        return std::nullopt;
      }
      return with_cond(cond, (0b01u << 26) | (*op5 << 21) |
                                 (unsigned(s) << 20) | (unsigned(rd) << 16) |
                                 (unsigned(insn.rn) << 12) | *field);
    }
    return with_cond(cond, (0b00u << 26) | (*op5 << 21) |
                               (unsigned(s) << 20) | (unsigned(rd) << 16) |
                               (unsigned(insn.rn) << 12) |
                               (unsigned(insn.ra) << 8) |
                               unsigned(insn.rm));
  }

  if (const auto op4 = mem_op4(insn.op)) {
    if (insn.addr == AddrMode::offset_imm) {
      if (insn.imm < 0 || insn.imm > 4095) {
        return std::nullopt;
      }
      return with_cond(cond, (0b10u << 26) | (*op4 << 21) |
                                 (unsigned(insn.rd) << 16) |
                                 (unsigned(insn.rn) << 12) |
                                 static_cast<std::uint32_t>(insn.imm));
    }
    if (insn.addr == AddrMode::offset_reg) {
      return with_cond(cond, (0b10u << 26) | (1u << 25) | (*op4 << 21) |
                                 (unsigned(insn.rd) << 16) |
                                 (unsigned(insn.rn) << 12) |
                                 unsigned(insn.rm));
    }
    if (insn.addr == AddrMode::pc_rel && insn.op == Op::ldr) {
      if (disp < 0 || disp > 4095) {
        return std::nullopt;
      }
      return with_cond(cond, (0b10u << 26) | (kMemLdrPc << 21) |
                                 (unsigned(insn.rd) << 16) |
                                 static_cast<std::uint32_t>(disp));
    }
    return std::nullopt;
  }

  switch (insn.op) {
    case Op::adr:
      if (disp < 0 || disp > 4095) {
        return std::nullopt;
      }
      return with_cond(cond, (0b10u << 26) | (kMemAdr << 21) |
                                 (unsigned(insn.rd) << 16) |
                                 static_cast<std::uint32_t>(disp));

    case Op::b:
    case Op::bl: {
      const std::int64_t rel = disp - 8;
      if (rel % 4 != 0 || !fits_signed(rel / 4, 22)) {
        return std::nullopt;
      }
      const auto kind = insn.op == Op::b ? 0u : 1u;
      return with_cond(cond,
                       (0b11u << 26) | (0b00u << 24) | (kind << 22) |
                           (static_cast<std::uint32_t>(rel / 4) & 0x3F'FFFFu));
    }
    case Op::bx:
      return with_cond(cond, (0b11u << 26) | (0b00u << 24) | (2u << 22) |
                                 unsigned(insn.rm));
    case Op::svc:
      if (insn.imm < 0 || !support::fits_unsigned(
                              static_cast<std::uint64_t>(insn.imm), 22)) {
        return std::nullopt;
      }
      return with_cond(cond, (0b11u << 26) | (0b00u << 24) | (3u << 22) |
                                 static_cast<std::uint32_t>(insn.imm));

    case Op::ldm:
    case Op::stm:
    case Op::push:
    case Op::pop: {
      if (insn.reglist == 0) {
        return std::nullopt;
      }
      unsigned mop = 0;
      bool w = insn.writeback;
      Reg rn = insn.rn;
      switch (insn.op) {
        case Op::ldm: mop = 0; break;
        case Op::stm: mop = 1; break;
        case Op::push: mop = 2; w = true; rn = sp; break;
        default: mop = 3; w = true; rn = sp; break;
      }
      return with_cond(cond, (0b11u << 26) | (0b01u << 24) | (mop << 21) |
                                 (unsigned(w) << 20) | (unsigned(rn) << 16) |
                                 insn.reglist);
    }

    case Op::nop:
      return with_cond(cond, (0b11u << 26) | (0b10u << 24) | (0u << 20));
    case Op::bkpt:
      if (insn.imm < 0 || insn.imm > 0xFFFF) {
        return std::nullopt;
      }
      return with_cond(cond, (0b11u << 26) | (0b10u << 24) | (1u << 20) |
                                 static_cast<std::uint32_t>(insn.imm));
    case Op::cps:
      return with_cond(cond, (0b11u << 26) | (0b10u << 24) | (2u << 20) |
                                 (insn.imm ? 1u : 0u));
    case Op::wfi:
      return with_cond(cond, (0b11u << 26) | (0b10u << 24) | (3u << 20));

    default:
      return std::nullopt;  // B32-only instruction
  }
}

class W32Codec final : public Codec {
 public:
  [[nodiscard]] Encoding encoding() const override { return Encoding::w32; }
  [[nodiscard]] int alignment() const override { return 4; }

  [[nodiscard]] int size_for(const Instruction& insn,
                             std::int64_t disp) const override {
    return build_word(insn, disp).has_value() ? 4 : 0;
  }

  void encode(const Instruction& insn, std::int64_t disp, int size,
              std::vector<std::uint8_t>& out) const override {
    ACES_CHECK(size == 4);
    const auto word = build_word(insn, disp);
    ACES_CHECK_MSG(word.has_value(), "instruction not encodable in W32");
    out.push_back(static_cast<std::uint8_t>(*word));
    out.push_back(static_cast<std::uint8_t>(*word >> 8));
    out.push_back(static_cast<std::uint8_t>(*word >> 16));
    out.push_back(static_cast<std::uint8_t>(*word >> 24));
  }

  [[nodiscard]] int decode(std::span<const std::uint8_t> code,
                           Instruction& out) const override;
};

}  // namespace

int W32Codec::decode(std::span<const std::uint8_t> code,
                     Instruction& out) const {
  if (code.size() < 4) {
    return 0;
  }
  const std::uint32_t w = static_cast<std::uint32_t>(code[0]) |
                          (static_cast<std::uint32_t>(code[1]) << 8) |
                          (static_cast<std::uint32_t>(code[2]) << 16) |
                          (static_cast<std::uint32_t>(code[3]) << 24);
  const unsigned cond4 = bits(w, 28, 4);
  if (cond4 > 14) {
    return 0;
  }
  out = Instruction{};
  out.cond = static_cast<Cond>(cond4);

  const unsigned cls = bits(w, 26, 2);
  if (cls == 0b00 || cls == 0b01) {
    const unsigned op5 = bits(w, 21, 5);
    static constexpr Op ops[21] = {
        Op::and_, Op::eor, Op::sub, Op::rsb, Op::add, Op::adc, Op::sbc,
        Op::orr,  Op::bic, Op::mov, Op::mvn, Op::cmp, Op::cmn, Op::tst,
        Op::teq,  Op::mul, Op::mla, Op::lsl, Op::lsr, Op::asr, Op::ror};
    if (op5 > 20) {
      return 0;
    }
    out.op = ops[op5];
    const bool is_compare = op5 >= kOpCmp && op5 <= kOpTeq;
    // Compares always encode with S=1 and rd=0; reject other patterns so
    // decode/encode stays a fixed point.
    if (is_compare && (bits(w, 20, 1) == 0 || bits(w, 16, 4) != 0)) {
      return 0;
    }
    out.set_flags =
        (is_compare || bits(w, 20, 1)) ? SetFlags::yes : SetFlags::no;
    out.rd = is_compare ? 0 : static_cast<Reg>(bits(w, 16, 4));
    out.rn = static_cast<Reg>(bits(w, 12, 4));
    if (is_compare) {
      out.rn = static_cast<Reg>(bits(w, 12, 4));
    }
    if (cls == 0b01) {
      if (op5 == kOpMul || op5 == kOpMla) {
        return 0;  // multiplies have no immediate form
      }
      const auto field = static_cast<std::uint16_t>(bits(w, 0, 12));
      // Reject redundant (non-minimal-rotation) modified immediates so the
      // decoder is canonical.
      if (encode_modified_imm(decode_modified_imm(field)) != field) {
        return 0;
      }
      out.uses_imm = true;
      out.imm = decode_modified_imm(field);
    } else {
      if (bits(w, 4, 4) != 0) {
        return 0;  // bits [7:4] unused in the register form
      }
      out.ra = static_cast<Reg>(bits(w, 8, 4));
      out.rm = static_cast<Reg>(bits(w, 0, 4));
    }
    return 4;
  }

  if (cls == 0b10) {
    if (bits(w, 20, 1) != 0) {
      return 0;  // unused bit between op4 and rd
    }
    const bool reg_form = bits(w, 25, 1) != 0;
    const unsigned op4 = bits(w, 21, 4);
    out.rd = static_cast<Reg>(bits(w, 16, 4));
    out.rn = static_cast<Reg>(bits(w, 12, 4));
    if (op4 == kMemLdrPc) {
      if (bits(w, 12, 4) != 0 || reg_form) {
        return 0;
      }
      out.op = Op::ldr;
      out.addr = AddrMode::pc_rel;
      out.rn = 0;
      out.imm = bits(w, 0, 12);
      return 4;
    }
    if (op4 == kMemAdr) {
      if (bits(w, 12, 4) != 0 || reg_form) {
        return 0;
      }
      out.op = Op::adr;
      out.rn = 0;
      out.imm = bits(w, 0, 12);
      return 4;
    }
    static constexpr Op mops[8] = {Op::ldr,   Op::ldrb, Op::ldrh, Op::ldrsb,
                                   Op::ldrsh, Op::str,  Op::strb, Op::strh};
    if (op4 > 7) {
      return 0;
    }
    out.op = mops[op4];
    if (reg_form) {
      if (bits(w, 4, 8) != 0) {
        return 0;  // must-be-zero field
      }
      out.addr = AddrMode::offset_reg;
      out.rm = static_cast<Reg>(bits(w, 0, 4));
    } else {
      out.addr = AddrMode::offset_imm;
      out.imm = bits(w, 0, 12);
    }
    return 4;
  }

  // cls == 0b11
  const unsigned sub = bits(w, 24, 2);
  if (sub == 0b00) {
    const unsigned kind = bits(w, 22, 2);
    switch (kind) {
      case 0:
      case 1:
        out.op = kind == 0 ? Op::b : Op::bl;
        out.imm =
            static_cast<std::int64_t>(support::sign_extend(bits(w, 0, 22), 22)) *
                4 +
            8;
        return 4;
      case 2:
        if (bits(w, 4, 18) != 0) {
          return 0;
        }
        out.op = Op::bx;
        out.rm = static_cast<Reg>(bits(w, 0, 4));
        return 4;
      default:
        out.op = Op::svc;
        out.uses_imm = true;
        out.imm = bits(w, 0, 22);
        return 4;
    }
  }
  if (sub == 0b01) {
    const unsigned mop = bits(w, 21, 3);
    static constexpr Op mops[4] = {Op::ldm, Op::stm, Op::push, Op::pop};
    if (mop > 3) {
      return 0;
    }
    out.op = mops[mop];
    out.writeback = bits(w, 20, 1) != 0;
    out.rn = static_cast<Reg>(bits(w, 16, 4));
    out.reglist = static_cast<std::uint16_t>(bits(w, 0, 16));
    if (out.op == Op::push || out.op == Op::pop) {
      // push/pop always encode rn=sp with writeback.
      if (out.rn != sp || !out.writeback) {
        return 0;
      }
      out.rn = 0;
      out.writeback = false;
    }
    return out.reglist != 0 ? 4 : 0;
  }
  if (sub == 0b10) {
    const unsigned sop = bits(w, 20, 4);
    switch (sop) {
      case 0:
        if (bits(w, 0, 20) != 0) {
          return 0;
        }
        out.op = Op::nop;
        return 4;
      case 1:
        if (bits(w, 16, 4) != 0) {
          return 0;
        }
        out.op = Op::bkpt;
        out.uses_imm = true;
        out.imm = bits(w, 0, 16);
        return 4;
      case 2:
        if (bits(w, 1, 19) != 0) {
          return 0;
        }
        out.op = Op::cps;
        out.uses_imm = true;
        out.imm = bits(w, 0, 1);
        return 4;
      case 3:
        if (bits(w, 0, 20) != 0) {
          return 0;
        }
        out.op = Op::wfi;
        return 4;
      default:
        return 0;
    }
  }
  return 0;
}

namespace {
const W32Codec kW32Codec;
}  // namespace

const Codec& w32_codec() { return kW32Codec; }

}  // namespace aces::isa
