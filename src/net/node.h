// net::EcuNode — one ECU abstraction across simulation fidelities.
//
// The paper's distributed vision treats "the network of automotive
// processors as a single compute resource"; composing such a network needs
// ECUs to be attachable to a bus without caring how they are simulated.
// Before this layer every scenario hand-wired one of two stacks:
//
//   ISS fidelity      cpu::System built from a SystemBuilder, a
//                     can::CanController mapped at the peripheral base, the
//                     guest image loaded, vector table patched, interrupt
//                     lines enabled, System::bind() to the co-simulation,
//                     controller IRQs connected through the binding, CTRL
//                     poked, core reset — ~10 steps repeated per example;
//   kernel fidelity   rtos::Kernel on the shared queue, tasks + alarms
//                     created, a raw CanBus node attached, transmission
//                     glued on with ad-hoc schedule_every lambdas.
//
// EcuNode extracts both wiring sequences behind one interface: an ECU has
// a name, sits on one bus as one CAN node, and optionally exposes its
// underlying cpu::System (ISS) or rtos::Kernel (model). NetworkBuilder
// (net/network.h) instantiates either fidelity from a declarative spec.
#ifndef ACES_NET_NODE_H
#define ACES_NET_NODE_H

#include <optional>
#include <string>
#include <vector>

#include "can/bus.h"
#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "rtos/kernel.h"
#include "sim/simulation.h"

namespace aces::net {

using BusId = int;

// ----- declarative specs ------------------------------------------------------

[[nodiscard]] inline cpu::Ivc::Config default_guest_ivc() {
  cpu::Ivc::Config c;
  c.vector_table = cpu::kSramBase + 0x40;
  c.lines = 4;
  return c;
}

// Everything an ISS-fidelity ECU needs beyond its SystemBuilder: the guest
// image, the interrupt wiring boot code would set up, and the controller
// CTRL bits to start with. A pure value — reusable across ECUs.
struct GuestProgram {
  isa::Image image;
  std::uint32_t entry = 0;  // reset PC (stack at the top of SRAM)
  // Interrupt controller owned by the built System. GuestProgram owns the
  // interrupt wiring end to end, so this overrides any .ivc()/.vic() set
  // on the SystemBuilder passed alongside it.
  cpu::Ivc::Config ivc = default_guest_ivc();
  struct Handler {
    unsigned line = 0;
    std::uint32_t address = 0;    // vector-table entry
    std::uint8_t priority = 32;   // Ivc line priority
  };
  std::vector<Handler> handlers;
  // Written to the controller's CTRL register at boot (host-side, the way
  // startup code would before the first frame).
  std::uint32_t ctrl = can::CanController::kCtrlRxie;
};

// One task of a kernel-model ECU: a periodic (or externally activated)
// workload that may publish a CAN frame at every completion.
struct ModelTask {
  std::string name;
  int priority = 0;
  sim::SimTime exec = 0;      // execute-segment length
  sim::SimTime period = 0;    // alarm period (0: no alarm)
  sim::SimTime offset = 0;    // first alarm activation
  sim::SimTime deadline = 0;  // 0 = implicit period
  // Queued on this ECU's bus node at every completion, stamped with the
  // completion instant (end-to-end measurable via CanFrame::timestamp).
  std::optional<can::CanFrame> tx;
  // Activate this task whenever a frame with this identifier is delivered
  // to the ECU's bus node — the kernel-model stand-in for an RX ISR
  // calling ActivateTask.
  std::optional<std::uint32_t> activate_on_rx;
};

// ----- node lifecycle faults --------------------------------------------------

// One scheduled fault against an ECU (net::EcuNode::inject). The paper's
// dependability story needs nodes that actually die: a crash is silent
// death (off the bus, compute frozen — the node vanishes from arbitration);
// a hang freezes compute but leaves the transceiver attached (the node
// still acknowledges frames, exactly the failure alive supervision exists
// to catch); a reset is a crash followed by an automatic reboot after
// `reboot_delay`; babble floods `babble_frame` every `babble_period` from
// `at` on — the classic babbling-idiot failure a bus guardian contains.
struct NodeFault {
  enum class Kind { crash, hang, reset, babble };
  Kind kind = Kind::crash;
  sim::SimTime at = 0;            // injection instant (absolute)
  sim::SimTime reboot_delay = 0;  // reset: time off the bus before reboot
  can::CanFrame babble_frame;     // babble: typically a top-priority id
  sim::SimTime babble_period = 0;
};

// ----- the fidelity-independent handle ----------------------------------------

class EcuNode {
 public:
  EcuNode(sim::Simulation& sim, can::CanBus& bus, BusId bus_id)
      : sim_(sim), bus_(bus), bus_id_(bus_id) {}
  virtual ~EcuNode() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] BusId bus() const { return bus_id_; }
  [[nodiscard]] virtual can::NodeId can_node() const = 0;

  // Fidelity probes: exactly one is non-null.
  [[nodiscard]] virtual cpu::System* system() { return nullptr; }
  [[nodiscard]] virtual rtos::Kernel* kernel() { return nullptr; }

  // ----- fault injection / liveness -----
  struct FaultStats {
    std::uint64_t crashes = 0;
    std::uint64_t hangs = 0;
    std::uint64_t resets = 0;
    std::uint64_t reboots = 0;        // completed reboots (reset/restart)
    std::uint64_t babble_frames = 0;  // flood frames queued on the bus
    std::uint64_t heartbeats = 0;     // heartbeat frames queued
  };

  // Schedules `fault` on the simulation (fault.at must be >= now).
  void inject(const NodeFault& fault);
  // Supervised restart: takes the node off the bus immediately (killing a
  // babble flood too) and reboots it `delay` later — the mitigation a
  // supervisor fires for a hung ECU. No-op while a reboot is in flight.
  // Safe to call from any shard: the sequence is marshaled to the ECU's
  // own shard (sim::run_on), immediate when the caller shares it.
  void restart(sim::SimTime delay);
  void stop_babble();
  // Emits `frame` on this node every `period` while alive (first at
  // now + period), stamped at the emission instant — the alive-supervision
  // heartbeat a net::SupervisorNode deadline-monitors.
  void start_heartbeat(const can::CanFrame& frame, sim::SimTime period);

  [[nodiscard]] bool alive() const { return alive_; }
  // Instant of the most recent fault injection (-1: never faulted); the
  // supervisor's reference point for fault-to-detection latency.
  [[nodiscard]] sim::SimTime last_fault_at() const { return last_fault_at_; }
  [[nodiscard]] sim::SimTime last_boot_at() const { return last_boot_at_; }
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

 protected:
  // Fidelity-specific compute halt/boot: ISS freeze + full guest reboot,
  // kernel-model halt()/reboot().
  virtual void halt_compute() = 0;
  virtual void boot_compute() = 0;

  sim::Simulation& sim_;
  can::CanBus& bus_;

 private:
  void restart_now(sim::SimTime delay);
  void do_crash();
  void do_hang();
  void start_babble(const can::CanFrame& frame, sim::SimTime period);
  void babble_tick(const can::CanFrame& frame, sim::SimTime period,
                   std::uint64_t epoch);

  BusId bus_id_;
  bool alive_ = true;
  bool babbling_ = false;
  bool reboot_pending_ = false;
  sim::SimTime last_fault_at_ = -1;
  sim::SimTime last_boot_at_ = 0;
  std::uint64_t babble_epoch_ = 0;  // kills stale babble chains
  FaultStats fault_stats_;
};

// ISS fidelity: the full single-ECU stack (System + CAN controller +
// co-simulation binding), wired exactly the way the hand-written examples
// did it, in one constructor.
class IssEcuNode final : public EcuNode {
 public:
  IssEcuNode(sim::Simulation& sim, can::CanBus& bus, BusId bus_id,
             const cpu::SystemBuilder& system, const GuestProgram& program,
             const can::CanController::Config& controller);

  [[nodiscard]] std::string_view name() const override {
    return sys_.name();
  }
  [[nodiscard]] can::NodeId can_node() const override {
    return controller_.node();
  }
  [[nodiscard]] cpu::System* system() override { return &sys_; }

  [[nodiscard]] can::CanController& controller() { return controller_; }
  [[nodiscard]] cpu::SystemBinding& binding() { return *sys_.binding(); }

  // Guest-memory probe (little-endian word), for self-checked scenarios.
  [[nodiscard]] std::uint32_t read_word(std::uint32_t addr) {
    return sys_.bus().read(addr, 4, mem::Access::read, 0).value;
  }
  // Worst observed entry latency of `line`, in core cycles (the Figure 4
  // quantity, measured on real traffic).
  [[nodiscard]] std::uint64_t worst_irq_latency(unsigned line);

 protected:
  // Crash/hang freeze the core in place; reboot re-runs the boot sequence
  // (image reload, vector patch, line enables, CTRL, core reset) — the
  // cycle counter survives, so the rebooted guest continues on the shared
  // time base without replaying history.
  void halt_compute() override;
  void boot_compute() override;

 private:
  void boot_guest();

  can::CanController controller_;
  cpu::System sys_;
  GuestProgram program_;  // kept for reboot
};

// Kernel-model fidelity: an rtos::Kernel on the shared queue plus one raw
// bus node, with task-completion transmission and RX-driven activation
// wired declaratively.
class ModelEcuNode final : public EcuNode {
 public:
  ModelEcuNode(sim::Simulation& sim, can::CanBus& bus, BusId bus_id,
               std::string name, const std::vector<ModelTask>& tasks,
               sim::SimTime context_switch_cost);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] can::NodeId can_node() const override { return node_; }
  [[nodiscard]] rtos::Kernel* kernel() override { return &kernel_; }

  // TaskId of the k-th ModelTask in declaration order.
  [[nodiscard]] rtos::TaskId task(std::size_t k) const {
    return task_ids_[k];
  }
  [[nodiscard]] const rtos::TaskStats& task_stats(std::size_t k) const {
    return kernel_.stats(task_ids_[k]);
  }

 protected:
  void halt_compute() override { kernel_.halt(); }
  void boot_compute() override { kernel_.reboot(); }

 private:
  std::string name_;
  can::NodeId node_;
  rtos::Kernel kernel_;
  std::vector<rtos::TaskId> task_ids_;
};

}  // namespace aces::net

#endif  // ACES_NET_NODE_H
