#include "net/network.h"

#include <algorithm>
#include <set>

#include "support/check.h"

namespace aces::net {

void NetworkBuilder::check_bus(BusId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id (declare buses with NetworkBuilder::bus "
                 "first)");
}

void NetworkBuilder::check_can(BusId id) const {
  check_bus(id);
  ACES_CHECK_MSG(buses_[static_cast<std::size_t>(id)].kind ==
                     BusSpec::Kind::kCan,
                 "this segment is a FlexRay fabric, not a CAN bus");
}

void NetworkBuilder::check_flexray(BusId id) const {
  check_bus(id);
  ACES_CHECK_MSG(buses_[static_cast<std::size_t>(id)].kind ==
                     BusSpec::Kind::kFlexray,
                 "this segment is a CAN bus, not a FlexRay fabric");
}

NetworkBuilder::GatewaySpec& NetworkBuilder::gateway_spec(GatewayId id) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < gateways_.size(),
                 "unknown gateway id");
  return gateways_[static_cast<std::size_t>(id)];
}

BusId NetworkBuilder::bus(std::string name, std::uint32_t bitrate_bps,
                          std::uint32_t data_bitrate_bps) {
  ACES_CHECK(bitrate_bps > 0);
  BusSpec spec;
  spec.name = std::move(name);
  spec.bitrate_bps = bitrate_bps;
  spec.data_bitrate_bps = data_bitrate_bps;
  buses_.push_back(std::move(spec));
  return static_cast<BusId>(buses_.size() - 1);
}

BusId NetworkBuilder::flexray(std::string name, FlexrayFabricConfig config) {
  BusSpec spec;
  spec.kind = BusSpec::Kind::kFlexray;
  spec.name = std::move(name);
  spec.flexray = config;
  buses_.push_back(std::move(spec));
  return static_cast<BusId>(buses_.size() - 1);
}

NetworkBuilder& NetworkBuilder::flexray_static(
    BusId id, std::vector<sched::FlexrayFrame> frames) {
  check_flexray(id);
  BusSpec& spec = buses_[static_cast<std::size_t>(id)];
  ACES_CHECK_MSG(!spec.have_static,
                 "fabric already has a static schedule assigned");
  spec.static_frames = std::move(frames);
  spec.have_static = true;
  return *this;
}

EcuId NetworkBuilder::ecu(BusId bus, cpu::SystemBuilder system,
                          GuestProgram program,
                          can::CanController::Config controller) {
  check_can(bus);
  ACES_CHECK_MSG(system.clock_hz() > 0,
                 "ISS ECU '" + system.name() +
                     "' needs a clock rate (SystemBuilder::clock_hz or a "
                     "profile default)");
  IssSpec spec;
  spec.bus = bus;
  spec.system = std::move(system);
  spec.program = std::move(program);
  spec.controller = controller;
  iss_.push_back(std::move(spec));
  order_.push_back(EcuOrder{true, iss_.size() - 1});
  return static_cast<EcuId>(order_.size() - 1);
}

EcuId NetworkBuilder::ecu(BusId bus, std::string name,
                          std::vector<ModelTask> tasks,
                          sim::SimTime context_switch_cost) {
  check_can(bus);
  ModelSpec spec;
  spec.bus = bus;
  spec.name = std::move(name);
  spec.tasks = std::move(tasks);
  spec.switch_cost = context_switch_cost;
  models_.push_back(std::move(spec));
  order_.push_back(EcuOrder{false, models_.size() - 1});
  return static_cast<EcuId>(order_.size() - 1);
}

GatewayId NetworkBuilder::gateway(std::string name, GatewayConfig config) {
  GatewaySpec spec;
  spec.name = std::move(name);
  spec.config = config;
  gateways_.push_back(std::move(spec));
  return static_cast<GatewayId>(gateways_.size() - 1);
}

NetworkBuilder& NetworkBuilder::route(GatewayId gateway, Route route) {
  check_can(route.from);
  check_can(route.to);
  gateway_spec(gateway).routes.push_back(route);
  return *this;
}

NetworkBuilder& NetworkBuilder::packed_route(GatewayId gateway,
                                             PackedRoute route) {
  check_can(route.from);
  check_can(route.to);
  ACES_CHECK_MSG(route.egress_dyn < 0,
                 "use packed_route_flexray for FlexRay egress (the dynamic "
                 "frame is registered at build time)");
  PackedRouteSpec spec;
  spec.route = std::move(route);
  gateway_spec(gateway).packed.push_back(std::move(spec));
  return *this;
}

NetworkBuilder& NetworkBuilder::packed_route_flexray(GatewayId gateway,
                                                     PackedRoute route,
                                                     std::string dyn_name,
                                                     unsigned dyn_slot_id,
                                                     unsigned dyn_max_bytes) {
  check_can(route.from);
  check_flexray(route.to);
  ACES_CHECK_MSG(dyn_slot_id >= 1, "dynamic slot ids start at 1");
  PackedRouteSpec spec;
  spec.route = std::move(route);
  spec.dyn_slot_id = dyn_slot_id;
  spec.dyn_max_bytes = dyn_max_bytes;
  spec.dyn_name = std::move(dyn_name);
  gateway_spec(gateway).packed.push_back(std::move(spec));
  return *this;
}

NetworkBuilder& NetworkBuilder::unpack_route(GatewayId gateway,
                                             UnpackRoute route) {
  check_can(route.from);
  check_can(route.to);
  ACES_CHECK_MSG(route.match_dyn < 0,
                 "use unpack_route_flexray for FlexRay ingress (matched by "
                 "dynamic slot id)");
  UnpackRouteSpec spec;
  spec.route = std::move(route);
  gateway_spec(gateway).unpack.push_back(std::move(spec));
  return *this;
}

NetworkBuilder& NetworkBuilder::unpack_route_flexray(GatewayId gateway,
                                                     UnpackRoute route,
                                                     unsigned match_slot_id) {
  check_flexray(route.from);
  check_can(route.to);
  ACES_CHECK_MSG(match_slot_id >= 1, "dynamic slot ids start at 1");
  UnpackRouteSpec spec;
  spec.route = std::move(route);
  spec.match_slot_id = match_slot_id;
  gateway_spec(gateway).unpack.push_back(std::move(spec));
  return *this;
}

Network::Network(const NetworkBuilder& b) : sim_(b.quantum_) {
  // Segments first: ECUs and gateways attach nodes in declaration order,
  // so node indices — and with them arbitration tie-breaking and delivery
  // order — are fixed by the description alone.
  for (const NetworkBuilder::BusSpec& spec : b.buses_) {
    bus_names_.push_back(spec.name);
    if (spec.kind == NetworkBuilder::BusSpec::Kind::kCan) {
      buses_.push_back(std::make_unique<can::CanBus>(
          sim_.queue(), spec.bitrate_bps, spec.data_bitrate_bps));
      flexrays_.push_back(nullptr);
    } else {
      buses_.push_back(nullptr);
      auto fabric = std::make_unique<FlexrayFabric>(sim_, spec.flexray);
      if (spec.have_static) {
        fabric->assign_static(spec.static_frames);
      }
      fabric->start();  // communication cycles run from t = 0
      flexrays_.push_back(std::move(fabric));
    }
  }
  for (const NetworkBuilder::EcuOrder& e : b.order_) {
    if (e.iss) {
      const NetworkBuilder::IssSpec& spec = b.iss_[e.index];
      ecus_.push_back(std::make_unique<IssEcuNode>(
          sim_, *buses_[static_cast<std::size_t>(spec.bus)], spec.bus,
          spec.system, spec.program, spec.controller));
    } else {
      const NetworkBuilder::ModelSpec& spec = b.models_[e.index];
      ecus_.push_back(std::make_unique<ModelEcuNode>(
          sim_, *buses_[static_cast<std::size_t>(spec.bus)], spec.bus,
          spec.name, spec.tasks, spec.switch_cost));
    }
  }
  // Gateways in two passes: the first joins segments, registers the
  // dynamic frames packed routes emit and installs plain + packed routes;
  // the second resolves unpack routes, so a gateway may unpack a dynamic
  // frame registered by a gateway declared later.
  for (const NetworkBuilder::GatewaySpec& spec : b.gateways_) {
    auto gw = std::make_unique<GatewayNode>(spec.name, sim_, spec.config);
    // Join every segment the routing table references, in id order.
    std::set<BusId> joined;
    for (const Route& r : spec.routes) {
      joined.insert(r.from);
      joined.insert(r.to);
    }
    for (const NetworkBuilder::PackedRouteSpec& p : spec.packed) {
      joined.insert(p.route.from);
      joined.insert(p.route.to);
    }
    for (const NetworkBuilder::UnpackRouteSpec& u : spec.unpack) {
      joined.insert(u.route.from);
      joined.insert(u.route.to);
    }
    for (const BusId id : joined) {
      if (is_can(id)) {
        gw->join(id, *buses_[static_cast<std::size_t>(id)]);
      } else {
        gw->join_flexray(id, *flexrays_[static_cast<std::size_t>(id)]);
      }
    }
    for (const Route& r : spec.routes) {
      gw->add_route(r);
    }
    for (const NetworkBuilder::PackedRouteSpec& p : spec.packed) {
      PackedRoute r = p.route;
      if (p.dyn_slot_id > 0) {
        unsigned max_bytes = p.dyn_max_bytes;
        if (max_bytes == 0) {  // default: the packing-table extent
          for (const PackSlot& slot : r.table) {
            max_bytes = std::max(max_bytes, slot.offset + slot.bytes);
          }
        }
        r.egress_dyn = flexray(r.to).add_dynamic_frame(
            gw->flexray_node_on(r.to), p.dyn_name, p.dyn_slot_id, max_bytes);
      }
      gw->add_packed_route(r);
    }
    gateways_.push_back(std::move(gw));
  }
  for (std::size_t g = 0; g < b.gateways_.size(); ++g) {
    for (const NetworkBuilder::UnpackRouteSpec& u : b.gateways_[g].unpack) {
      UnpackRoute r = u.route;
      if (u.match_slot_id > 0) {
        r.match_dyn = flexray(r.from).dyn_by_slot(u.match_slot_id);
      }
      gateways_[g]->add_unpack_route(r);
    }
  }
}

can::CanBus& Network::bus(BusId id) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id");
  ACES_CHECK_MSG(is_can(id), "this segment is a FlexRay fabric (use "
                             "Network::flexray)");
  return *buses_[static_cast<std::size_t>(id)];
}

FlexrayFabric& Network::flexray(BusId id) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id");
  ACES_CHECK_MSG(!is_can(id), "this segment is a CAN bus (use "
                              "Network::bus)");
  return *flexrays_[static_cast<std::size_t>(id)];
}

IssEcuNode& Network::iss(EcuId id) {
  auto* node = dynamic_cast<IssEcuNode*>(&ecu(id));
  ACES_CHECK_MSG(node != nullptr, "ECU is not ISS fidelity");
  return *node;
}

ModelEcuNode& Network::model(EcuId id) {
  auto* node = dynamic_cast<ModelEcuNode*>(&ecu(id));
  ACES_CHECK_MSG(node != nullptr, "ECU is not kernel-model fidelity");
  return *node;
}

void Network::send_every(EcuId ecu_id, sim::SimTime period,
                         can::CanFrame frame,
                         std::function<void(can::CanFrame&)> mutate) {
  EcuNode& node = ecu(ecu_id);
  can::CanBus& b = bus(node.bus());
  const can::NodeId n = node.can_node();
  sim_.schedule_every(
      period, [this, &b, n, frame, mutate = std::move(mutate)]() mutable {
        if (mutate) {
          mutate(frame);
        }
        can::CanFrame f = frame;
        f.timestamp = sim_.now();
        b.send(n, f);
      });
}

void Network::send(EcuId ecu_id, can::CanFrame frame) {
  EcuNode& node = ecu(ecu_id);
  frame.timestamp = sim_.now();
  bus(node.bus()).send(node.can_node(), frame);
}

SupervisorNode& Network::add_supervisor(BusId bus_id, std::string name) {
  supervisors_.push_back(std::make_unique<SupervisorNode>(
      sim_, bus(bus_id), bus_id, std::move(name)));
  return *supervisors_.back();
}

}  // namespace aces::net
