#include "net/network.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "support/check.h"

namespace aces::net {

namespace {

// Union-find over BusIds for the partitioning pass.
struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent[i] = i;
    }
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return false;
    }
    // Smaller root wins: component representatives stay deterministic.
    if (b < a) {
      std::swap(a, b);
    }
    parent[b] = a;
    return true;
  }
  std::vector<std::size_t> parent;
};

}  // namespace

void NetworkBuilder::check_bus(BusId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id (declare buses with NetworkBuilder::bus "
                 "first)");
}

void NetworkBuilder::check_can(BusId id) const {
  check_bus(id);
  ACES_CHECK_MSG(buses_[static_cast<std::size_t>(id)].kind ==
                     BusSpec::Kind::kCan,
                 "this segment is a FlexRay fabric, not a CAN bus");
}

void NetworkBuilder::check_flexray(BusId id) const {
  check_bus(id);
  ACES_CHECK_MSG(buses_[static_cast<std::size_t>(id)].kind ==
                     BusSpec::Kind::kFlexray,
                 "this segment is a CAN bus, not a FlexRay fabric");
}

NetworkBuilder::GatewaySpec& NetworkBuilder::gateway_spec(GatewayId id) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < gateways_.size(),
                 "unknown gateway id");
  return gateways_[static_cast<std::size_t>(id)];
}

BusId NetworkBuilder::bus(std::string name, std::uint32_t bitrate_bps,
                          std::uint32_t data_bitrate_bps) {
  ACES_CHECK(bitrate_bps > 0);
  BusSpec spec;
  spec.name = std::move(name);
  spec.bitrate_bps = bitrate_bps;
  spec.data_bitrate_bps = data_bitrate_bps;
  buses_.push_back(std::move(spec));
  return static_cast<BusId>(buses_.size() - 1);
}

BusId NetworkBuilder::flexray(std::string name, FlexrayFabricConfig config) {
  BusSpec spec;
  spec.kind = BusSpec::Kind::kFlexray;
  spec.name = std::move(name);
  spec.flexray = config;
  buses_.push_back(std::move(spec));
  return static_cast<BusId>(buses_.size() - 1);
}

NetworkBuilder& NetworkBuilder::flexray_static(
    BusId id, std::vector<sched::FlexrayFrame> frames) {
  check_flexray(id);
  BusSpec& spec = buses_[static_cast<std::size_t>(id)];
  ACES_CHECK_MSG(!spec.have_static,
                 "fabric already has a static schedule assigned");
  spec.static_frames = std::move(frames);
  spec.have_static = true;
  return *this;
}

EcuId NetworkBuilder::ecu(BusId bus, cpu::SystemBuilder system,
                          GuestProgram program,
                          can::CanController::Config controller) {
  check_can(bus);
  ACES_CHECK_MSG(system.clock_hz() > 0,
                 "ISS ECU '" + system.name() +
                     "' needs a clock rate (SystemBuilder::clock_hz or a "
                     "profile default)");
  IssSpec spec;
  spec.bus = bus;
  spec.system = std::move(system);
  spec.program = std::move(program);
  spec.controller = controller;
  iss_.push_back(std::move(spec));
  order_.push_back(EcuOrder{true, iss_.size() - 1});
  return static_cast<EcuId>(order_.size() - 1);
}

EcuId NetworkBuilder::ecu(BusId bus, std::string name,
                          std::vector<ModelTask> tasks,
                          sim::SimTime context_switch_cost) {
  check_can(bus);
  ModelSpec spec;
  spec.bus = bus;
  spec.name = std::move(name);
  spec.tasks = std::move(tasks);
  spec.switch_cost = context_switch_cost;
  models_.push_back(std::move(spec));
  order_.push_back(EcuOrder{false, models_.size() - 1});
  return static_cast<EcuId>(order_.size() - 1);
}

GatewayId NetworkBuilder::gateway(std::string name, GatewayConfig config) {
  GatewaySpec spec;
  spec.name = std::move(name);
  spec.config = config;
  gateways_.push_back(std::move(spec));
  return static_cast<GatewayId>(gateways_.size() - 1);
}

NetworkBuilder& NetworkBuilder::route(GatewayId gateway, Route route) {
  check_can(route.from);
  check_can(route.to);
  gateway_spec(gateway).routes.push_back(route);
  return *this;
}

NetworkBuilder& NetworkBuilder::packed_route(GatewayId gateway,
                                             PackedRoute route) {
  check_can(route.from);
  check_can(route.to);
  ACES_CHECK_MSG(route.egress_dyn < 0,
                 "use packed_route_flexray for FlexRay egress (the dynamic "
                 "frame is registered at build time)");
  PackedRouteSpec spec;
  spec.route = std::move(route);
  gateway_spec(gateway).packed.push_back(std::move(spec));
  return *this;
}

NetworkBuilder& NetworkBuilder::packed_route_flexray(GatewayId gateway,
                                                     PackedRoute route,
                                                     std::string dyn_name,
                                                     unsigned dyn_slot_id,
                                                     unsigned dyn_max_bytes) {
  check_can(route.from);
  check_flexray(route.to);
  ACES_CHECK_MSG(dyn_slot_id >= 1, "dynamic slot ids start at 1");
  PackedRouteSpec spec;
  spec.route = std::move(route);
  spec.dyn_slot_id = dyn_slot_id;
  spec.dyn_max_bytes = dyn_max_bytes;
  spec.dyn_name = std::move(dyn_name);
  gateway_spec(gateway).packed.push_back(std::move(spec));
  return *this;
}

NetworkBuilder& NetworkBuilder::unpack_route(GatewayId gateway,
                                             UnpackRoute route) {
  check_can(route.from);
  check_can(route.to);
  ACES_CHECK_MSG(route.match_dyn < 0,
                 "use unpack_route_flexray for FlexRay ingress (matched by "
                 "dynamic slot id)");
  UnpackRouteSpec spec;
  spec.route = std::move(route);
  gateway_spec(gateway).unpack.push_back(std::move(spec));
  return *this;
}

NetworkBuilder& NetworkBuilder::unpack_route_flexray(GatewayId gateway,
                                                     UnpackRoute route,
                                                     unsigned match_slot_id) {
  check_flexray(route.from);
  check_can(route.to);
  ACES_CHECK_MSG(match_slot_id >= 1, "dynamic slot ids start at 1");
  UnpackRouteSpec spec;
  spec.route = std::move(route);
  spec.match_slot_id = match_slot_id;
  gateway_spec(gateway).unpack.push_back(std::move(spec));
  return *this;
}

Network::Network(const NetworkBuilder& b) : sim_(b.quantum_) {
  // ----- partitioning pass ---------------------------------------------------
  // Each bus/fabric (with its attached ECUs) is assigned to one shard;
  // gateway routes are the only edges between segments. A directed edge's
  // latency is its route's effective forwarding latency; the minimum over
  // all cross-shard edges becomes the synchronization lookahead. Merged
  // into one shard are: everything, when the builder pinned shards(1);
  // zero-latency edges (no lookahead to exploit); and directions mixing
  // several latencies (the egress-side admission replay requires frames
  // of a direction to arrive in ingress order, which uniform latency
  // guarantees). An explicit cap merges the tightest-coupled components
  // first. All of it is a pure function of the builder description, so
  // shard assignment — and therefore every simulation result — is
  // deterministic.
  const std::size_t nbuses = b.buses_.size();
  UnionFind uf(nbuses);
  std::map<std::pair<BusId, BusId>, std::set<sim::SimTime>> edge_lat;
  for (const NetworkBuilder::GatewaySpec& spec : b.gateways_) {
    for (const Route& r : spec.routes) {
      edge_lat[{r.from, r.to}].insert(spec.config.forwarding_latency);
    }
    for (const NetworkBuilder::PackedRouteSpec& p : spec.packed) {
      const sim::SimTime lat = p.route.latency < 0
                                   ? spec.config.forwarding_latency
                                   : p.route.latency;
      edge_lat[{p.route.from, p.route.to}].insert(lat);
    }
    for (const NetworkBuilder::UnpackRouteSpec& u : spec.unpack) {
      const sim::SimTime lat = u.route.latency < 0
                                   ? spec.config.forwarding_latency
                                   : u.route.latency;
      edge_lat[{u.route.from, u.route.to}].insert(lat);
    }
  }
  if (b.shards_ == 1) {
    for (std::size_t i = 1; i < nbuses; ++i) {
      uf.unite(0, i);
    }
  } else {
    for (const auto& [edge, lats] : edge_lat) {
      if (*lats.begin() <= 0 || lats.size() > 1) {
        uf.unite(static_cast<std::size_t>(edge.first),
                 static_cast<std::size_t>(edge.second));
      }
    }
    if (b.shards_ >= 2) {
      // Cap: repeatedly merge across the smallest-latency remaining edge
      // (ties by bus ids) until within budget.
      auto component_count = [&] {
        std::set<std::size_t> roots;
        for (std::size_t i = 0; i < nbuses; ++i) {
          roots.insert(uf.find(i));
        }
        return roots.size();
      };
      while (component_count() > b.shards_) {
        const std::pair<BusId, BusId>* best = nullptr;
        sim::SimTime best_lat = sim::kNever;
        for (const auto& [edge, lats] : edge_lat) {
          if (uf.find(static_cast<std::size_t>(edge.first)) ==
              uf.find(static_cast<std::size_t>(edge.second))) {
            continue;
          }
          if (*lats.begin() < best_lat) {
            best_lat = *lats.begin();
            best = &edge;
          }
        }
        if (best == nullptr) {
          // Disconnected components only: merge the two smallest ids.
          std::set<std::size_t> roots;
          for (std::size_t i = 0; i < nbuses; ++i) {
            roots.insert(uf.find(i));
          }
          auto it = roots.begin();
          const std::size_t a = *it++;
          uf.unite(a, *it);
          continue;
        }
        uf.unite(static_cast<std::size_t>(best->first),
                 static_cast<std::size_t>(best->second));
      }
    }
  }
  // Lookahead = min effective latency over the edges still crossing.
  sim::SimTime lookahead = sim::kNever;
  for (const auto& [edge, lats] : edge_lat) {
    if (uf.find(static_cast<std::size_t>(edge.first)) !=
        uf.find(static_cast<std::size_t>(edge.second))) {
      lookahead = std::min(lookahead, *lats.begin());
    }
  }
  // Shard indices in order of each component's smallest BusId.
  std::map<std::size_t, sim::Simulation*> shard_of_root;
  shard_of_bus_.resize(nbuses, nullptr);
  for (std::size_t i = 0; i < nbuses; ++i) {
    const std::size_t root = uf.find(i);
    auto it = shard_of_root.find(root);
    if (it == shard_of_root.end()) {
      it = shard_of_root.emplace(root, &sim_.add_shard()).first;
    }
    shard_of_bus_[i] = it->second;
  }
  if (sim_.shard_count() == 0) {
    sim_.add_shard();  // degenerate bus-less network still has a timeline
  }
  if (lookahead != sim::kNever) {
    sim_.set_lookahead(lookahead);
  }
  sim_.set_threads(b.threads_);

  // Segments next: ECUs and gateways attach nodes in declaration order,
  // so node indices — and with them arbitration tie-breaking and delivery
  // order — are fixed by the description alone.
  for (std::size_t i = 0; i < nbuses; ++i) {
    const NetworkBuilder::BusSpec& spec = b.buses_[i];
    sim::Simulation& shard = *shard_of_bus_[i];
    bus_names_.push_back(spec.name);
    if (spec.kind == NetworkBuilder::BusSpec::Kind::kCan) {
      buses_.push_back(std::make_unique<can::CanBus>(
          shard.queue(), spec.bitrate_bps, spec.data_bitrate_bps));
      flexrays_.push_back(nullptr);
    } else {
      buses_.push_back(nullptr);
      auto fabric = std::make_unique<FlexrayFabric>(shard, spec.flexray);
      if (spec.have_static) {
        fabric->assign_static(spec.static_frames);
      }
      fabric->start();  // communication cycles run from t = 0
      flexrays_.push_back(std::move(fabric));
    }
  }
  for (const NetworkBuilder::EcuOrder& e : b.order_) {
    if (e.iss) {
      const NetworkBuilder::IssSpec& spec = b.iss_[e.index];
      ecus_.push_back(std::make_unique<IssEcuNode>(
          *shard_of_bus_[static_cast<std::size_t>(spec.bus)],
          *buses_[static_cast<std::size_t>(spec.bus)], spec.bus,
          spec.system, spec.program, spec.controller));
    } else {
      const NetworkBuilder::ModelSpec& spec = b.models_[e.index];
      ecus_.push_back(std::make_unique<ModelEcuNode>(
          *shard_of_bus_[static_cast<std::size_t>(spec.bus)],
          *buses_[static_cast<std::size_t>(spec.bus)], spec.bus,
          spec.name, spec.tasks, spec.switch_cost));
    }
  }
  // Gateways in two passes: the first joins segments, registers the
  // dynamic frames packed routes emit and installs plain + packed routes;
  // the second resolves unpack routes, so a gateway may unpack a dynamic
  // frame registered by a gateway declared later.
  for (const NetworkBuilder::GatewaySpec& spec : b.gateways_) {
    auto gw = std::make_unique<GatewayNode>(spec.name, spec.config);
    // Join every segment the routing table references, in id order.
    std::set<BusId> joined;
    for (const Route& r : spec.routes) {
      joined.insert(r.from);
      joined.insert(r.to);
    }
    for (const NetworkBuilder::PackedRouteSpec& p : spec.packed) {
      joined.insert(p.route.from);
      joined.insert(p.route.to);
    }
    for (const NetworkBuilder::UnpackRouteSpec& u : spec.unpack) {
      joined.insert(u.route.from);
      joined.insert(u.route.to);
    }
    for (const BusId id : joined) {
      sim::Simulation& shard = *shard_of_bus_[static_cast<std::size_t>(id)];
      if (is_can(id)) {
        gw->join(id, *buses_[static_cast<std::size_t>(id)], shard);
      } else {
        gw->join_flexray(id, *flexrays_[static_cast<std::size_t>(id)], shard);
      }
    }
    for (const Route& r : spec.routes) {
      gw->add_route(r);
    }
    for (const NetworkBuilder::PackedRouteSpec& p : spec.packed) {
      PackedRoute r = p.route;
      if (p.dyn_slot_id > 0) {
        unsigned max_bytes = p.dyn_max_bytes;
        if (max_bytes == 0) {  // default: the packing-table extent
          for (const PackSlot& slot : r.table) {
            max_bytes = std::max(max_bytes, slot.offset + slot.bytes);
          }
        }
        r.egress_dyn = flexray(r.to).add_dynamic_frame(
            gw->flexray_node_on(r.to), p.dyn_name, p.dyn_slot_id, max_bytes);
      }
      gw->add_packed_route(r);
    }
    gateways_.push_back(std::move(gw));
  }
  for (std::size_t g = 0; g < b.gateways_.size(); ++g) {
    for (const NetworkBuilder::UnpackRouteSpec& u : b.gateways_[g].unpack) {
      UnpackRoute r = u.route;
      if (u.match_slot_id > 0) {
        r.match_dyn = flexray(r.from).dyn_by_slot(u.match_slot_id);
      }
      gateways_[g]->add_unpack_route(r);
    }
  }
}

can::CanBus& Network::bus(BusId id) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id");
  ACES_CHECK_MSG(is_can(id), "this segment is a FlexRay fabric (use "
                             "Network::flexray)");
  return *buses_[static_cast<std::size_t>(id)];
}

FlexrayFabric& Network::flexray(BusId id) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id");
  ACES_CHECK_MSG(!is_can(id), "this segment is a CAN bus (use "
                              "Network::bus)");
  return *flexrays_[static_cast<std::size_t>(id)];
}

IssEcuNode& Network::iss(EcuId id) {
  auto* node = dynamic_cast<IssEcuNode*>(&ecu(id));
  ACES_CHECK_MSG(node != nullptr, "ECU is not ISS fidelity");
  return *node;
}

ModelEcuNode& Network::model(EcuId id) {
  auto* node = dynamic_cast<ModelEcuNode*>(&ecu(id));
  ACES_CHECK_MSG(node != nullptr, "ECU is not kernel-model fidelity");
  return *node;
}

void Network::send_every(EcuId ecu_id, sim::SimTime period,
                         can::CanFrame frame,
                         std::function<void(can::CanFrame&)> mutate) {
  EcuNode& node = ecu(ecu_id);
  can::CanBus& b = bus(node.bus());
  const can::NodeId n = node.can_node();
  sim::Simulation& s = shard(node.bus());
  s.schedule_every(
      period, [&s, &b, n, frame, mutate = std::move(mutate)]() mutable {
        if (mutate) {
          mutate(frame);
        }
        can::CanFrame f = frame;
        f.timestamp = s.now();
        b.send(n, f);
      });
}

void Network::send(EcuId ecu_id, can::CanFrame frame) {
  EcuNode& node = ecu(ecu_id);
  frame.timestamp = shard(node.bus()).now();
  bus(node.bus()).send(node.can_node(), frame);
}

SupervisorNode& Network::add_supervisor(BusId bus_id, std::string name) {
  supervisors_.push_back(std::make_unique<SupervisorNode>(
      shard(bus_id), bus(bus_id), bus_id, std::move(name)));
  return *supervisors_.back();
}

}  // namespace aces::net
