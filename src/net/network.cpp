#include "net/network.h"

#include <algorithm>
#include <set>

#include "support/check.h"

namespace aces::net {

void NetworkBuilder::check_bus(BusId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < buses_.size(),
                 "unknown bus id (declare buses with NetworkBuilder::bus "
                 "first)");
}

BusId NetworkBuilder::bus(std::string name, std::uint32_t bitrate_bps) {
  ACES_CHECK(bitrate_bps > 0);
  BusSpec spec;
  spec.name = std::move(name);
  spec.bitrate_bps = bitrate_bps;
  buses_.push_back(std::move(spec));
  return static_cast<BusId>(buses_.size() - 1);
}

EcuId NetworkBuilder::ecu(BusId bus, cpu::SystemBuilder system,
                          GuestProgram program,
                          can::CanController::Config controller) {
  check_bus(bus);
  ACES_CHECK_MSG(system.clock_hz() > 0,
                 "ISS ECU '" + system.name() +
                     "' needs a clock rate (SystemBuilder::clock_hz or a "
                     "profile default)");
  IssSpec spec;
  spec.bus = bus;
  spec.system = std::move(system);
  spec.program = std::move(program);
  spec.controller = controller;
  iss_.push_back(std::move(spec));
  order_.push_back(EcuOrder{true, iss_.size() - 1});
  return static_cast<EcuId>(order_.size() - 1);
}

EcuId NetworkBuilder::ecu(BusId bus, std::string name,
                          std::vector<ModelTask> tasks,
                          sim::SimTime context_switch_cost) {
  check_bus(bus);
  ModelSpec spec;
  spec.bus = bus;
  spec.name = std::move(name);
  spec.tasks = std::move(tasks);
  spec.switch_cost = context_switch_cost;
  models_.push_back(std::move(spec));
  order_.push_back(EcuOrder{false, models_.size() - 1});
  return static_cast<EcuId>(order_.size() - 1);
}

GatewayId NetworkBuilder::gateway(std::string name, GatewayConfig config) {
  GatewaySpec spec;
  spec.name = std::move(name);
  spec.config = config;
  gateways_.push_back(std::move(spec));
  return static_cast<GatewayId>(gateways_.size() - 1);
}

NetworkBuilder& NetworkBuilder::route(GatewayId gateway, Route route) {
  ACES_CHECK_MSG(gateway >= 0 &&
                     static_cast<std::size_t>(gateway) < gateways_.size(),
                 "unknown gateway id");
  check_bus(route.from);
  check_bus(route.to);
  gateways_[static_cast<std::size_t>(gateway)].routes.push_back(route);
  return *this;
}

Network::Network(const NetworkBuilder& b) : sim_(b.quantum_) {
  // Buses first: ECUs and gateways attach nodes in declaration order, so
  // node indices — and with them arbitration tie-breaking and delivery
  // order — are fixed by the description alone.
  for (const NetworkBuilder::BusSpec& spec : b.buses_) {
    bus_names_.push_back(spec.name);
    buses_.push_back(
        std::make_unique<can::CanBus>(sim_.queue(), spec.bitrate_bps));
  }
  for (const NetworkBuilder::EcuOrder& e : b.order_) {
    if (e.iss) {
      const NetworkBuilder::IssSpec& spec = b.iss_[e.index];
      ecus_.push_back(std::make_unique<IssEcuNode>(
          sim_, *buses_[static_cast<std::size_t>(spec.bus)], spec.bus,
          spec.system, spec.program, spec.controller));
    } else {
      const NetworkBuilder::ModelSpec& spec = b.models_[e.index];
      ecus_.push_back(std::make_unique<ModelEcuNode>(
          sim_, *buses_[static_cast<std::size_t>(spec.bus)], spec.bus,
          spec.name, spec.tasks, spec.switch_cost));
    }
  }
  for (const NetworkBuilder::GatewaySpec& spec : b.gateways_) {
    auto gw = std::make_unique<GatewayNode>(spec.name, sim_, spec.config);
    // Join every bus the routing table references, in bus-id order.
    std::set<BusId> joined;
    for (const Route& r : spec.routes) {
      joined.insert(r.from);
      joined.insert(r.to);
    }
    for (const BusId id : joined) {
      gw->join(id, *buses_[static_cast<std::size_t>(id)]);
    }
    for (const Route& r : spec.routes) {
      gw->add_route(r);
    }
    gateways_.push_back(std::move(gw));
  }
}

IssEcuNode& Network::iss(EcuId id) {
  auto* node = dynamic_cast<IssEcuNode*>(&ecu(id));
  ACES_CHECK_MSG(node != nullptr, "ECU is not ISS fidelity");
  return *node;
}

ModelEcuNode& Network::model(EcuId id) {
  auto* node = dynamic_cast<ModelEcuNode*>(&ecu(id));
  ACES_CHECK_MSG(node != nullptr, "ECU is not kernel-model fidelity");
  return *node;
}

void Network::send_every(EcuId ecu_id, sim::SimTime period,
                         can::CanFrame frame,
                         std::function<void(can::CanFrame&)> mutate) {
  EcuNode& node = ecu(ecu_id);
  can::CanBus& b = bus(node.bus());
  const can::NodeId n = node.can_node();
  sim_.schedule_every(
      period, [this, &b, n, frame, mutate = std::move(mutate)]() mutable {
        if (mutate) {
          mutate(frame);
        }
        can::CanFrame f = frame;
        f.timestamp = sim_.now();
        b.send(n, f);
      });
}

void Network::send(EcuId ecu_id, can::CanFrame frame) {
  EcuNode& node = ecu(ecu_id);
  frame.timestamp = sim_.now();
  bus(node.bus()).send(node.can_node(), frame);
}

}  // namespace aces::net
