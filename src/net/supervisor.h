// net::SupervisorNode — alive supervision and graceful degradation.
//
// The paper's dependability argument needs more than fault injection: a
// vehicle network must *notice* a dead node and *do something about it*.
// SupervisorNode is the watchdog ECU of that story. It sits on one CAN bus
// as an ordinary node and deadline-monitors the heartbeat frames its peers
// emit (EcuNode::start_heartbeat): every expected heartbeat re-arms a
// deadline timer at now + period + window; a timer that fires before the
// next heartbeat is a *detected failure*.
//
// The detection latency is analyzable. A node that dies at time t has, at
// worst, just emitted a heartbeat, so the next one is due at t + period
// and the supervisor declares the miss at most
//
//   detection_bound = period + window + delivery_bound
//
// after the fault — `window` being the configured grace beyond the period
// and `delivery_bound` the worst-case wire delivery of one heartbeat
// (sched::can_rta of the heartbeat id, supplied by the caller). Every
// detection records the measured fault-to-detection latency (against the
// faulted EcuNode's last_fault_at) so tests assert measured <= bound.
//
// On detection the supervisor degrades gracefully rather than stopping:
//   - mitigations  an ordered list of named actions, each fired at its own
//     delay after detection — gateway failover to a redundant route,
//     supervised restart of a hung ECU, detaching a babbling node
//     (Mitigation::gateway_failover / restart_ecu / detach_node build the
//     common ones);
//   - limp-home    an optional substitution frame published periodically
//     in place of the dead producer's traffic, so consumers keep seeing
//     (safe, degraded) data until the node recovers.
//
// A returning heartbeat ends the failure: limp-home stops, the recovery is
// counted, and the fault-to-recovery latency is recorded (the quantity
// campaigns aggregate into recovery-time distributions).
//
// Deterministic: everything advances on the owning simulation's queue;
// deadline timers are epoch-guarded (re-arming invalidates the old timer
// as a no-op), so double runs replay bit-identically.
#ifndef ACES_NET_SUPERVISOR_H
#define ACES_NET_SUPERVISOR_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.h"
#include "net/gateway.h"
#include "net/node.h"
#include "sim/simulation.h"

namespace aces::net {

// One named recovery action, fired `delay` after detection.
struct Mitigation {
  std::string name;
  sim::SimTime delay = 0;
  std::function<void()> fn;

  // Failover: disable the primary gateway route, enable the standby one
  // (either index may be negative to skip that half).
  [[nodiscard]] static Mitigation gateway_failover(GatewayNode& gw,
                                                   int disable_route,
                                                   int enable_route,
                                                   sim::SimTime delay = 0);
  // Supervised restart of a hung/misbehaving ECU (EcuNode::restart).
  [[nodiscard]] static Mitigation restart_ecu(EcuNode& ecu,
                                              sim::SimTime reboot_delay,
                                              sim::SimTime delay = 0);
  // Cuts a (babbling) node off its bus (can::CanBus::detach).
  [[nodiscard]] static Mitigation detach_node(can::CanBus& bus,
                                              can::NodeId node,
                                              sim::SimTime delay = 0);
};

class SupervisorNode {
 public:
  using MonitorId = int;

  struct Monitor {
    std::string name;                 // what is being supervised
    std::uint32_t heartbeat_id = 0;   // CAN id of the heartbeat frame
    sim::SimTime period = 0;          // expected heartbeat period
    sim::SimTime window = 0;          // grace beyond the period
    sim::SimTime delivery_bound = 0;  // worst-case wire delivery (analysis)
    EcuNode* ecu = nullptr;           // reference for fault-latency metrics
    std::vector<Mitigation> mitigations;
    // Limp-home substitution: published every `limp_period` while failed.
    std::optional<can::CanFrame> limp_frame;
    sim::SimTime limp_period = 0;
  };

  struct MonitorStats {
    std::uint64_t heartbeats = 0;   // heartbeat frames seen
    std::uint64_t misses = 0;       // deadline expiries (failures declared)
    std::uint64_t mitigations = 0;  // mitigation actions fired
    std::uint64_t recoveries = 0;   // heartbeat resumed after a failure
    std::uint64_t limp_frames = 0;  // substitution frames published
    sim::SimTime last_detect_at = -1;
    // Measured fault -> detection (needs Monitor::ecu; -1 until seen).
    sim::SimTime worst_detect_latency = -1;
    // Measured fault -> heartbeat-resumed (-1 until a recovery happened).
    sim::SimTime worst_recover_latency = -1;
  };

  // The supervisor attaches itself to `bus` as node `name` and subscribes;
  // monitors added afterwards are armed by start().
  SupervisorNode(sim::Simulation& sim, can::CanBus& bus, BusId bus_id,
                 std::string name);

  SupervisorNode(const SupervisorNode&) = delete;
  SupervisorNode& operator=(const SupervisorNode&) = delete;

  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] BusId bus() const { return bus_id_; }
  [[nodiscard]] can::NodeId can_node() const { return node_; }

  MonitorId add_monitor(Monitor monitor);
  // Arms every monitor's first deadline (now + period + window) — call
  // once, after the monitored ECUs' heartbeats are started.
  void start();

  // The analytic detection bound asserted against measured latencies:
  // period + window + delivery_bound.
  [[nodiscard]] sim::SimTime detection_bound(MonitorId id) const;
  [[nodiscard]] const Monitor& monitor(MonitorId id) const;
  [[nodiscard]] const MonitorStats& stats(MonitorId id) const;
  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }
  // True while `id`'s failure is declared and not yet recovered.
  [[nodiscard]] bool failed(MonitorId id) const;
  // Every measured fault -> recovery latency, in occurrence order (the
  // samples campaigns fold into recovery-time distributions).
  [[nodiscard]] const std::vector<sim::SimTime>& recovery_samples() const {
    return recovery_samples_;
  }
  // Gateway drops observed via watch_gateway since construction. The
  // counter is atomic: a watched gateway's drop callbacks can fire on
  // whichever shard owns the dropping direction, not necessarily the
  // supervisor's.
  [[nodiscard]] std::uint64_t gateway_drops() const {
    return gateway_drops_.load(std::memory_order_relaxed);
  }
  // Counts every frame `gw` drops (overflow or translation) against this
  // supervisor — degradation the network should know about, not silence.
  void watch_gateway(GatewayNode& gw);

 private:
  struct MonitorState {
    Monitor cfg;
    MonitorStats stats;
    bool failed = false;
    std::uint64_t deadline_epoch = 0;  // invalidates superseded timers
    std::uint64_t limp_epoch = 0;      // kills stale limp-home chains
    sim::SimTime fault_ref = -1;       // reference instant for latencies
  };

  void on_frame(const can::CanFrame& frame, sim::SimTime at);
  void arm_deadline(std::size_t k);
  void on_deadline(std::size_t k, std::uint64_t epoch);
  void limp_tick(std::size_t k, std::uint64_t epoch);

  sim::Simulation& sim_;
  can::CanBus& canbus_;
  BusId bus_id_;
  std::string name_;
  can::NodeId node_;
  bool started_ = false;
  std::vector<MonitorState> monitors_;
  std::vector<sim::SimTime> recovery_samples_;
  std::atomic<std::uint64_t> gateway_drops_{0};
};

}  // namespace aces::net

#endif  // ACES_NET_SUPERVISOR_H
