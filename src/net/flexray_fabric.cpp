#include "net/flexray_fabric.h"

#include <algorithm>

#include "support/check.h"

namespace aces::net {

using sim::SimTime;

FlexrayFabric::FlexrayFabric(sim::EventQueue& queue,
                             FlexrayFabricConfig config)
    : queue_(queue), config_(config) {
  ACES_CHECK(config_.static_cfg.cycle_length > 0);
  ACES_CHECK(config_.bitrate_bps > 0);
  bit_time_ = sim::kSecond / config_.bitrate_bps;
  ACES_CHECK_MSG(bit_time_ > 0, "bit rate too high for ns resolution");
  static_segment_ =
      static_cast<SimTime>(config_.static_cfg.static_slots) *
      config_.static_cfg.slot_length;
  if (config_.minislots > 0) {
    ACES_CHECK(config_.minislot > 0);
  }
  ACES_CHECK_MSG(static_segment_ +
                         static_cast<SimTime>(config_.minislots) *
                             config_.minislot <=
                     config_.static_cfg.cycle_length,
                 "static + dynamic segments exceed the communication cycle");
}

FlexrayFabric::NodeId FlexrayFabric::attach_node(std::string name) {
  Node n;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void FlexrayFabric::assign_static(std::vector<sched::FlexrayFrame> frames) {
  ACES_CHECK_MSG(!have_static_, "static schedule already assigned");
  ACES_CHECK_MSG(!started_, "assign_static must run before start()");
  static_frames_ = std::move(frames);
  static_schedule_ =
      sched::build_static_schedule(config_.static_cfg, static_frames_);
  ACES_CHECK_MSG(static_schedule_.feasible,
                 "cannot play an infeasible FlexRay static schedule");
  have_static_ = true;
}

void FlexrayFabric::on_static_slot(SlotFn fn) {
  ACES_CHECK_MSG(static_cast<bool>(fn), "on_static_slot needs a callback");
  on_slot_ = std::move(fn);
}

unsigned FlexrayFabric::frame_minislots(unsigned bytes) const {
  ACES_CHECK_MSG(config_.minislots > 0, "fabric has no dynamic segment");
  const SimTime duration =
      bit_time_ * static_cast<SimTime>(frame_bits(bytes));
  return static_cast<unsigned>((duration + config_.minislot - 1) /
                               config_.minislot);
}

FlexrayFabric::DynId FlexrayFabric::add_dynamic_frame(NodeId owner,
                                                      std::string name,
                                                      unsigned slot_id,
                                                      unsigned max_bytes) {
  ACES_CHECK_MSG(owner >= 0 &&
                     static_cast<std::size_t>(owner) < nodes_.size(),
                 "dynamic frame owner is not an attached node");
  ACES_CHECK_MSG(slot_id >= 1, "dynamic slot ids start at 1");
  ACES_CHECK_MSG(max_bytes >= 1 && max_bytes <= kMaxPayload,
                 "dynamic payload ceiling is 1..64 bytes");
  for (const DynFrame& f : dyn_frames_) {
    ACES_CHECK_MSG(f.info.slot_id != slot_id,
                   "dynamic slot id already registered on this fabric");
  }
  DynFrame f;
  f.info.name = std::move(name);
  f.info.node = owner;
  f.info.slot_id = slot_id;
  f.info.max_bytes = max_bytes;
  f.info.minislots = frame_minislots(max_bytes);  // checks dynamic segment
  ACES_CHECK_MSG(f.info.minislots <= config_.minislots,
                 "a max-size frame under '" + f.info.name +
                     "' cannot fit the dynamic segment");
  max_slot_id_ = std::max(max_slot_id_, slot_id);
  dyn_frames_.push_back(std::move(f));
  return static_cast<DynId>(dyn_frames_.size() - 1);
}

void FlexrayFabric::send_dynamic(DynId id, const DynPayload& payload) {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < dyn_frames_.size(),
                 "unknown dynamic frame");
  DynFrame& f = dyn_frames_[static_cast<std::size_t>(id)];
  ACES_CHECK_MSG(payload.bytes <= f.info.max_bytes,
                 "payload exceeds the registered ceiling of '" +
                     f.info.name + "'");
  QueuedPayload q;
  q.payload = payload;
  q.queued_at = queue_.now();
  if (q.payload.timestamp < 0) {
    q.payload.timestamp = queue_.now();
  }
  f.queue.push_back(std::move(q));
}

void FlexrayFabric::subscribe(NodeId node, DynRxHandler handler) {
  nodes_[static_cast<std::size_t>(node)].handlers.push_back(
      std::move(handler));
}

void FlexrayFabric::subscribe_tx(NodeId node, DynRxHandler handler) {
  nodes_[static_cast<std::size_t>(node)].tx_handlers.push_back(
      std::move(handler));
}

const FlexrayFabric::DynFrameInfo& FlexrayFabric::dyn_info(DynId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < dyn_frames_.size(),
                 "unknown dynamic frame");
  return dyn_frames_[static_cast<std::size_t>(id)].info;
}

const FlexrayFabric::DynStats& FlexrayFabric::dyn_stats(DynId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < dyn_frames_.size(),
                 "unknown dynamic frame");
  return dyn_frames_[static_cast<std::size_t>(id)].stats;
}

FlexrayFabric::DynId FlexrayFabric::dyn_by_slot(unsigned slot_id) const {
  for (std::size_t k = 0; k < dyn_frames_.size(); ++k) {
    if (dyn_frames_[k].info.slot_id == slot_id) {
      return static_cast<DynId>(k);
    }
  }
  ACES_CHECK_MSG(false, "no dynamic frame registered under this slot id");
  return -1;
}

sched::FlexrayDynHopParams FlexrayFabric::dynamic_hop_params(
    DynId id, SimTime deadline) const {
  const DynFrameInfo& info = dyn_info(id);
  sched::FlexrayDynHopParams p;
  p.cycle_length = config_.static_cfg.cycle_length;
  p.static_segment = static_segment_;
  p.minislot = config_.minislot;
  p.minislots = config_.minislots;
  p.slot_minislots = info.minislots;
  p.deadline = deadline;
  // Run-up to this id's decision point: every assigned higher-priority id
  // transmits a max-size frame (its registered occupancy), every
  // unassigned id below consumes one idle minislot.
  unsigned assigned_below = 0;
  unsigned assigned_cost = 0;
  for (const DynFrame& f : dyn_frames_) {
    if (f.info.slot_id < info.slot_id) {
      ++assigned_below;
      assigned_cost += f.info.minislots;
    }
  }
  p.higher_prio_minislots =
      assigned_cost + (info.slot_id - 1 - assigned_below);
  return p;
}

sched::PathHop FlexrayFabric::dynamic_hop(DynId id, SimTime deadline,
                                          SimTime gateway_latency,
                                          int bus) const {
  return sched::flexray_dynamic_hop(dynamic_hop_params(id, deadline),
                                    gateway_latency, bus);
}

void FlexrayFabric::start() {
  ACES_CHECK_MSG(!started_, "FlexrayFabric already started");
  started_ = true;
  arm_cycle(queue_.now());
}

void FlexrayFabric::arm_cycle(SimTime cycle_start) {
  ++cycles_run_;
  if (have_static_) {
    for (const sched::FlexrayAssignment& a : static_schedule_.assignments) {
      if (cycle_ % a.repetition != a.base_cycle) {
        continue;
      }
      const SimTime slot_start =
          cycle_start +
          static_cast<SimTime>(a.slot) * config_.static_cfg.slot_length;
      queue_.schedule_at(slot_start, [this, &a, slot_start] {
        ++slots_played_;
        if (on_slot_) {
          on_slot_(static_frames_[static_cast<std::size_t>(a.frame)], a,
                   slot_start);
        }
      });
    }
  }
  if (config_.minislots > 0) {
    const SimTime dyn_start = cycle_start + static_segment_;
    queue_.schedule_at(dyn_start, [this, dyn_start] {
      // Fresh per-cycle budget ledger for the bus guardian (sized here:
      // nodes may attach at any time).
      guardian_cycle_use_.assign(nodes_.size(), 0);
      walk_dynamic(dyn_start, 1, 0);
    });
  }
  const SimTime next = cycle_start + config_.static_cfg.cycle_length;
  queue_.schedule_at(next, [this, next] {
    cycle_ = (cycle_ + 1) % 64;
    arm_cycle(next);
  });
}

void FlexrayFabric::walk_dynamic(SimTime t, unsigned slot_id, unsigned used) {
  if (used >= config_.minislots || slot_id > max_slot_id_) {
    return;  // the rest of the segment idles
  }
  // Decision point of `slot_id`: the registry is scanned at the instant
  // the counter reaches the id, so frames queued earlier in this very
  // cycle still catch their slot.
  // Indexed lookup (not a pointer): a registration while the delivery
  // event below is in flight may reallocate dyn_frames_.
  std::size_t fi = dyn_frames_.size();
  for (std::size_t k = 0; k < dyn_frames_.size(); ++k) {
    if (dyn_frames_[k].info.slot_id == slot_id) {
      fi = k;
      break;
    }
  }
  if (fi < dyn_frames_.size() && !dyn_frames_[fi].queue.empty()) {
    DynFrame& frame = dyn_frames_[fi];
    const unsigned need = frame_minislots(frame.queue.front().payload.bytes);
    const std::size_t owner = static_cast<std::size_t>(frame.info.node);
    if (config_.guardian.enabled && guardian_blocked(frame.info.node)) {
      // Latched off: the guardian keeps the slot silent; one idle
      // minislot passes, like an unassigned id.
      ++guardian_stats_.blocked_grants;
    } else if (config_.guardian.enabled &&
               owner < guardian_cycle_use_.size() &&
               guardian_cycle_use_[owner] + need >
                   config_.guardian.node_budget_minislots) {
      // Budget crossing: deterministic cutoff at this exact decision
      // point. The node is off the dynamic segment until released.
      if (guardian_latched_.size() < nodes_.size()) {
        guardian_latched_.resize(nodes_.size(), 0);
      }
      guardian_latched_[owner] = 1;
      ++guardian_stats_.cutoffs;
    } else if (used + need <= config_.minislots) {
      // Granted: the frame occupies `need` minislots; delivery (and the
      // counter's next decision point) at their end.
      if (config_.guardian.enabled && owner < guardian_cycle_use_.size()) {
        guardian_cycle_use_[owner] += need;
      }
      const SimTime done = t + static_cast<SimTime>(need) * config_.minislot;
      QueuedPayload sent = std::move(frame.queue.front());
      frame.queue.pop_front();
      DynStats& s = frame.stats;
      ++s.sent;
      const SimTime latency = done - sent.queued_at;
      s.worst_latency = std::max(s.worst_latency, latency);
      s.total_latency += latency;
      queue_.schedule_at(done, [this, fi, sent = std::move(sent), done,
                                slot_id, used, need] {
        deliver(dyn_frames_[fi], sent.payload, done);
        walk_dynamic(done, slot_id + 1, used + need);
      });
      return;
    } else {
      // pLatestTx: the frame no longer fits this cycle's budget; its id
      // consumes one idle minislot and the frame waits for the next cycle.
      ++frame.stats.deferrals;
    }
  }
  const SimTime next = t + config_.minislot;
  queue_.schedule_at(
      next, [this, next, slot_id, used] { walk_dynamic(next, slot_id + 1, used + 1); });
}

void FlexrayFabric::deliver(DynFrame& f, const DynPayload& payload,
                            SimTime at) {
  const Node& owner = nodes_[static_cast<std::size_t>(f.info.node)];
  for (const DynRxHandler& h : owner.tx_handlers) {
    h(f.info, payload, at);
  }
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (static_cast<NodeId>(k) == f.info.node) {
      continue;
    }
    for (const DynRxHandler& h : nodes_[k].handlers) {
      h(f.info, payload, at);
    }
  }
}

bool FlexrayFabric::guardian_blocked(NodeId node) const {
  const std::size_t k = static_cast<std::size_t>(node);
  return k < guardian_latched_.size() && guardian_latched_[k] != 0;
}

void FlexrayFabric::guardian_release(NodeId node) {
  const std::size_t k = static_cast<std::size_t>(node);
  if (k < guardian_latched_.size()) {
    guardian_latched_[k] = 0;
  }
}

void FlexrayFabric::reset_stats() {
  for (DynFrame& f : dyn_frames_) {
    f.stats = DynStats{};
  }
  guardian_stats_ = GuardianStats{};
}

}  // namespace aces::net
