// Store-and-forward gateway: the node that turns separate fabrics into a
// vehicle network.
//
// Real vehicles segment traffic onto domain buses (powertrain / body /
// diagnostics) at different bit rates and bridge them with a gateway ECU.
// GatewayNode models the datapath of such an ECU: it sits on every bus its
// routing table references as an ordinary CAN node, receives completed
// frames, matches them against identifier match/mask routes, optionally
// rewrites the identifier, charges a fixed store-and-forward processing
// latency, and queues the frame into the egress bus's priority-ordered
// mailbox — where it arbitrates like any other traffic.
//
// Heterogeneous fabrics add two translating route kinds and FlexRay ports:
//
//   Route (plain)   may also promote a classic frame to CAN FD on an
//                   FD-capable egress bus (`fd = true`) or demote an FD
//                   frame that fits 8 bytes back to classic (`fd = false`,
//                   e.g. leaving an FD backbone for a legacy bus; an FD
//                   frame too big to demote is dropped and counted);
//   PackedRoute     N classic ingress frames update a 64-byte packing
//                   buffer through a signal-packing table; the arrival of
//                   the designated trigger frame emits ONE aggregated
//                   frame — a CAN FD frame or a FlexRay dynamic frame —
//                   carrying the trigger's origin timestamp;
//   UnpackRoute     the inverse: one big ingress frame (CAN/CAN FD by id,
//                   or FlexRay dynamic by DynId) fans out into N classic
//                   frames sliced from its payload, each carrying the big
//                   frame's origin timestamp.
//
// Buffering is bounded per *direction* (ingress bus -> egress bus): at most
// `queue_depth` frames may be inside the gateway (accepted but not yet
// delivered on the egress wire) per direction; a frame arriving to a full
// direction is dropped and counted, never queued — the overload behavior a
// schedulability argument has to see. CanFrame::timestamp (and the FlexRay
// DynPayload timestamp) is preserved across the hop, so receivers measure
// true end-to-end latency, the quantity sched::path_rta bounds.
//
// A frame the gateway itself transmits is never received back by the
// gateway on that bus (CAN delivery skips the transmitter), so a pair of
// complementary routes cannot ping-pong one frame. Multi-hop forwarding
// therefore needs a distinct gateway per hop, as in a real E/E
// architecture.
#ifndef ACES_NET_GATEWAY_H
#define ACES_NET_GATEWAY_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.h"
#include "net/flexray_fabric.h"
#include "sim/simulation.h"

namespace aces::net {

using BusId = int;

// One routing-table entry: forward frames whose identifier matches `match`
// under `mask` from bus `from` to bus `to`, optionally rewriting the
// identifier to `remap`. Every matching route forwards (fan-out to several
// egress buses is one entry per destination).
struct Route {
  BusId from = -1;
  BusId to = -1;
  std::uint32_t match = 0;
  std::uint32_t mask = 0x7FF;  // compared identifier bits (11-bit default)
  std::optional<std::uint32_t> remap;  // egress identifier override
  // Egress format translation. `fd = true` promotes to CAN FD (the egress
  // bus must have a data bit rate), `fd = false` demotes to classic — an
  // FD frame whose DLC code exceeds 8 bytes cannot demote and is dropped
  // (counted as dropped_translation). Unset forwards the format verbatim;
  // forwarding an FD frame onto a classic-only egress bus is then a
  // configuration error the egress bus rejects. `brs` overrides the
  // bit-rate switch on (promoted or passed-through) FD egress frames.
  std::optional<bool> fd{};
  std::optional<bool> brs{};
  // Disabled routes are skipped entirely; toggled at runtime via
  // GatewayNode::set_route_enabled — the mechanism behind supervisor-driven
  // failover, where a standby route on a redundant bus is pre-declared
  // disabled and switched on when the primary's publisher dies.
  bool enabled = true;

  [[nodiscard]] bool matches(std::uint32_t id) const {
    return (id & mask) == (match & mask);
  }
};

// Signal-packing table entry: `bytes` bytes of `src_id`'s payload land at
// `offset` in the packed payload.
struct PackSlot {
  std::uint32_t src_id = 0;
  unsigned offset = 0;
  unsigned bytes = 8;
};

// Aggregating translation (see file comment). The packing buffer holds the
// latest payload of every table identifier; `trigger_id` (which must be
// one of the table's identifiers) emits the aggregate after updating its
// own slot.
struct PackedRoute {
  BusId from = -1;
  BusId to = -1;
  std::vector<PackSlot> table;
  std::uint32_t trigger_id = 0;
  // CAN(-FD) egress (used when egress_dyn < 0). egress_dlc is the DLC
  // *code*; its payload must cover the table extent.
  std::uint32_t egress_id = 0;
  bool egress_extended = false;
  bool egress_fd = true;
  bool egress_brs = true;
  unsigned egress_dlc = 0;
  // FlexRay egress: >= 0 selects the registered dynamic frame (owned by
  // this gateway's node on `to`) carrying the packed payload.
  int egress_dyn = -1;
  unsigned egress_bytes = 0;  // FlexRay payload size; 0 = table extent
  // Translation processing latency; < 0 uses the gateway's
  // forwarding_latency.
  sim::SimTime latency = -1;
};

// One slice of an unpacking table: bytes [offset, offset+dlc) of the big
// payload egress as a classic frame `dst_id` with `dlc` data bytes.
struct UnpackSlot {
  std::uint32_t dst_id = 0;
  bool extended = false;
  unsigned dlc = 8;
  unsigned offset = 0;
};

// Disaggregating translation: the inverse of PackedRoute.
struct UnpackRoute {
  BusId from = -1;
  BusId to = -1;
  std::uint32_t match_id = 0;  // CAN ingress identifier…
  int match_dyn = -1;          // …or FlexRay DynId when `from` is FlexRay
  std::vector<UnpackSlot> table;
  sim::SimTime latency = -1;  // < 0: the gateway's forwarding_latency
};

struct GatewayConfig {
  // Store-and-forward processing per frame: the time between delivery on
  // the ingress bus and the frame entering the egress mailbox.
  sim::SimTime forwarding_latency = 0;
  // Per-direction bound on frames inside the gateway (accepted, not yet on
  // the egress wire). 0 is rejected — a gateway that can hold nothing
  // forwards nothing.
  unsigned queue_depth = 16;
};

// Sharding: a gateway may bridge buses living on different sim::Shards —
// it is the ONLY cross-shard element in a Network. Each port remembers its
// bus's shard; ingress handling (route match, translation, packing) runs
// on the ingress shard, egress (mailbox entry, wire completion, per-
// direction queue accounting) on the egress shard. A cross-shard hop
// travels through the shard outbox at ingress_time + forwarding_latency —
// which is exactly why the forwarding latency is the synchronization
// lookahead. Admission for a cross direction is decided on the egress
// shard but reproduces the serial ingress-time decision exactly: egress
// completions stamped at or before the frame's ingress instant are
// replayed (released) first. Directions whose ports share a shard take
// today's path byte for byte.
class GatewayNode {
 public:
  GatewayNode(std::string name, GatewayConfig config);

  GatewayNode(const GatewayNode&) = delete;
  GatewayNode& operator=(const GatewayNode&) = delete;

  // Wiring (done by Network::build): join every bus the routing table
  // references — on the shard that bus lives on — then install the routes.
  void join(BusId id, can::CanBus& bus, sim::Simulation& shard);
  void join_flexray(BusId id, FlexrayFabric& fabric, sim::Simulation& shard);
  void add_route(const Route& route);
  void add_packed_route(const PackedRoute& route);
  void add_unpack_route(const UnpackRoute& route);

  // Runtime failover switch for plain routes (indexed in add order).
  // Safe to call from any shard: the toggle is marshaled onto the route's
  // ingress shard (applied at the next epoch boundary when cross-shard).
  void set_route_enabled(std::size_t route, bool enabled);

  // Drop observability: degradation must be a signal, not just a tally.
  // Fired at every frame drop with the direction, the egress identifier
  // the frame would have carried, and the reason — the hook supervisors
  // and campaign counters wire into.
  enum class DropReason { overflow, translation };
  using DropHandler = std::function<void(BusId from, BusId to,
                                         std::uint32_t egress_id,
                                         DropReason, sim::SimTime)>;
  void on_drop(DropHandler handler) {
    drop_handlers_.push_back(std::move(handler));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] can::NodeId node_on(BusId bus) const;
  // The gateway's node id on a joined FlexRay fabric (for registering the
  // dynamic frames its packed routes emit).
  [[nodiscard]] FlexrayFabric::NodeId flexray_node_on(BusId bus) const;
  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }
  [[nodiscard]] const std::vector<PackedRoute>& packed_routes() const {
    return packed_routes_;
  }
  [[nodiscard]] const std::vector<UnpackRoute>& unpack_routes() const {
    return unpack_routes_;
  }

  struct DirectionStats {
    std::uint64_t forwarded = 0;         // accepted into the gateway
    std::uint64_t delivered = 0;         // completed on the egress wire
    std::uint64_t dropped_overflow = 0;  // arrived with the direction full
    // Frames that could not be format-translated (an FD frame too big to
    // demote to classic on this direction).
    std::uint64_t dropped_translation = 0;
    unsigned queued = 0;                 // currently inside the gateway
    unsigned peak_queued = 0;
    // Worst ingress-delivery -> egress-delivery transit (forwarding
    // latency + egress queuing + egress frame time).
    sim::SimTime worst_transit = 0;
  };
  // Returned by value: on a cross-shard direction the internal `queued`
  // counter lags behind the egress wire by the not-yet-replayed releases;
  // the returned snapshot reports the true in-gateway count.
  [[nodiscard]] DirectionStats direction(BusId from, BusId to) const;

  // Per translating route (indexed in add order).
  struct TranslationStats {
    std::uint64_t updates = 0;  // ingress frames consumed into the buffer
                                // (pack) / big frames matched (unpack)
    std::uint64_t emitted = 0;  // egress frames queued
    sim::SimTime worst_transit = 0;  // trigger/big-frame rx -> egress wire
  };
  [[nodiscard]] const TranslationStats& packed_stats(std::size_t route) const;
  [[nodiscard]] const TranslationStats& unpack_stats(std::size_t route) const;

  struct Stats {
    std::uint64_t frames_forwarded = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_dropped = 0;
  };
  // Computed from the per-direction counters (each owned by exactly one
  // shard thread — an incrementally-maintained aggregate would be a data
  // race under sharding).
  [[nodiscard]] Stats stats() const;

  // Clears the forwarding counters (per-direction, per-route and
  // aggregate) without touching live state: frames currently inside the
  // gateway stay queued and still deliver; `queued` is preserved and
  // `peak_queued` restarts from it. Packing buffers are state, not
  // statistics, and persist. Pairs with CanBus::reset_stats for fresh
  // measurement windows on a reused topology.
  void reset_stats();

 private:
  struct Port {
    can::CanBus* bus = nullptr;         // exactly one of bus/flexray set
    FlexrayFabric* flexray = nullptr;
    can::NodeId node = -1;              // node id on whichever fabric
    sim::Simulation* shard = nullptr;   // the scheduler this fabric lives on
  };
  struct Transit {  // a frame handed to an egress mailbox, awaiting the wire
    BusId from = -1;
    sim::SimTime ingress_at = 0;
    int packed_route = -1;  // translating route to credit on delivery
    int unpack_route = -1;
  };

  void on_rx(BusId from, const can::CanFrame& frame, sim::SimTime at);
  void on_tx_done(BusId to, const can::CanFrame& frame, sim::SimTime at);
  void on_flexray_rx(BusId from, const FlexrayFabric::DynFrameInfo& info,
                     const FlexrayFabric::DynPayload& payload,
                     sim::SimTime at);
  void on_flexray_tx_done(BusId to, const FlexrayFabric::DynFrameInfo& info,
                          sim::SimTime at);
  // Applies a plain route's format overrides in place; false = the frame
  // cannot be represented on egress (demotion overflow).
  [[nodiscard]] bool translate_format(const Route& route,
                                      can::CanFrame& out) const;
  // Bounded admission into direction (from, to); false = overflow drop
  // (fires the drop hooks with `egress_id`).
  [[nodiscard]] bool admit(BusId from, BusId to, std::uint32_t egress_id,
                           sim::SimTime at);
  void emit_drop(BusId from, BusId to, std::uint32_t egress_id,
                 DropReason reason, sim::SimTime at);
  void queue_can_egress(BusId from, BusId to, can::CanFrame out,
                        sim::SimTime ingress_at, sim::SimTime latency,
                        int packed_route, int unpack_route);
  void queue_flexray_egress(BusId from, BusId to, FlexrayFabric::DynId dyn,
                            FlexrayFabric::DynPayload payload,
                            sim::SimTime ingress_at, sim::SimTime latency,
                            int packed_route);
  void run_unpack(std::size_t route_index, const UnpackRoute& route,
                  const std::uint8_t* payload, unsigned payload_bytes,
                  std::int64_t timestamp, sim::SimTime at);
  void credit_emitted(int packed_route, int unpack_route);
  [[nodiscard]] const Port& port_of(BusId id) const;

  // Per-direction accounting plus the cross-shard release backlog (see
  // admit): egress-wire completions at instants the admission replay has
  // not consumed yet. Same-shard directions never populate it, so the
  // replay loop is a no-op there and the serial admission path is intact.
  struct DirectionState {
    DirectionStats stats;
    std::deque<sim::SimTime> pending_release;
  };
  [[nodiscard]] DirectionState& dir_state(BusId from, BusId to) {
    return directions_[{from, to}];
  }

  std::string name_;
  GatewayConfig config_;
  std::map<BusId, Port> ports_;
  std::vector<Route> routes_;
  std::vector<PackedRoute> packed_routes_;
  std::vector<UnpackRoute> unpack_routes_;
  // Latest-value packing buffer + statistics, one per packed route.
  struct PackState {
    std::array<std::uint8_t, FlexrayFabric::kMaxPayload> buffer{};
    TranslationStats stats;
  };
  std::vector<PackState> pack_state_;
  std::vector<TranslationStats> unpack_stats_;
  std::map<std::pair<BusId, BusId>, DirectionState> directions_;
  // Per egress bus, per egress identifier: FIFO of frames handed to the
  // mailbox but not yet delivered (equal-priority mailbox order is FIFO,
  // and retransmission preserves it, so attribution by id is exact).
  std::map<BusId, std::map<std::uint32_t, std::deque<Transit>>> in_transit_;
  // Same, for FlexRay egress, keyed by dynamic slot id (unique per fabric;
  // one FIFO per dynamic frame).
  std::map<BusId, std::map<int, std::deque<Transit>>> fr_in_transit_;
  std::vector<DropHandler> drop_handlers_;
};

}  // namespace aces::net

#endif  // ACES_NET_GATEWAY_H
