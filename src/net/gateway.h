// Store-and-forward CAN gateway: the node that turns separate buses into a
// vehicle network.
//
// Real vehicles segment traffic onto domain buses (powertrain / body /
// diagnostics) at different bit rates and bridge them with a gateway ECU.
// GatewayNode models the datapath of such an ECU: it sits on every bus its
// routing table references as an ordinary CAN node, receives completed
// frames, matches them against identifier match/mask routes, optionally
// rewrites the identifier, charges a fixed store-and-forward processing
// latency, and queues the frame into the egress bus's priority-ordered
// mailbox — where it arbitrates like any other traffic.
//
// Buffering is bounded per *direction* (ingress bus -> egress bus): at most
// `queue_depth` frames may be inside the gateway (accepted but not yet
// delivered on the egress wire) per direction; a frame arriving to a full
// direction is dropped and counted, never queued — the overload behavior a
// schedulability argument has to see. CanFrame::timestamp is preserved
// across the hop, so receivers measure true end-to-end latency, the
// quantity sched::path_rta bounds.
//
// A frame the gateway itself transmits is never received back by the
// gateway on that bus (CAN delivery skips the transmitter), so a pair of
// complementary routes cannot ping-pong one frame. Multi-hop forwarding
// therefore needs a distinct gateway per hop, as in a real E/E
// architecture.
#ifndef ACES_NET_GATEWAY_H
#define ACES_NET_GATEWAY_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.h"
#include "sim/simulation.h"

namespace aces::net {

using BusId = int;

// One routing-table entry: forward frames whose identifier matches `match`
// under `mask` from bus `from` to bus `to`, optionally rewriting the
// identifier to `remap`. Every matching route forwards (fan-out to several
// egress buses is one entry per destination).
struct Route {
  BusId from = -1;
  BusId to = -1;
  std::uint32_t match = 0;
  std::uint32_t mask = 0x7FF;  // compared identifier bits (11-bit default)
  std::optional<std::uint32_t> remap;  // egress identifier override

  [[nodiscard]] bool matches(std::uint32_t id) const {
    return (id & mask) == (match & mask);
  }
};

struct GatewayConfig {
  // Store-and-forward processing per frame: the time between delivery on
  // the ingress bus and the frame entering the egress mailbox.
  sim::SimTime forwarding_latency = 0;
  // Per-direction bound on frames inside the gateway (accepted, not yet on
  // the egress wire). 0 is rejected — a gateway that can hold nothing
  // forwards nothing.
  unsigned queue_depth = 16;
};

class GatewayNode {
 public:
  GatewayNode(std::string name, sim::Simulation& sim, GatewayConfig config);

  GatewayNode(const GatewayNode&) = delete;
  GatewayNode& operator=(const GatewayNode&) = delete;

  // Wiring (done by Network::build): join every bus the routing table
  // references, then install the routes.
  void join(BusId id, can::CanBus& bus);
  void add_route(const Route& route);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] can::NodeId node_on(BusId bus) const;
  [[nodiscard]] const std::vector<Route>& routes() const { return routes_; }

  struct DirectionStats {
    std::uint64_t forwarded = 0;         // accepted into the gateway
    std::uint64_t delivered = 0;         // completed on the egress wire
    std::uint64_t dropped_overflow = 0;  // arrived with the direction full
    unsigned queued = 0;                 // currently inside the gateway
    unsigned peak_queued = 0;
    // Worst ingress-delivery -> egress-delivery transit (forwarding
    // latency + egress queuing + egress frame time).
    sim::SimTime worst_transit = 0;
  };
  [[nodiscard]] const DirectionStats& direction(BusId from, BusId to) const;

  struct Stats {
    std::uint64_t frames_forwarded = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_dropped = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Clears the forwarding counters (per-direction and aggregate) without
  // touching live state: frames currently inside the gateway stay queued
  // and still deliver; `queued` is preserved and `peak_queued` restarts
  // from it. Pairs with CanBus::reset_stats for fresh measurement windows
  // on a reused topology.
  void reset_stats();

 private:
  struct Port {
    can::CanBus* bus = nullptr;
    can::NodeId node = -1;
  };
  struct Transit {  // a frame handed to an egress mailbox, awaiting the wire
    BusId from = -1;
    sim::SimTime ingress_at = 0;
  };

  void on_rx(BusId from, const can::CanFrame& frame, sim::SimTime at);
  void on_tx_done(BusId to, const can::CanFrame& frame, sim::SimTime at);
  [[nodiscard]] DirectionStats& dir(BusId from, BusId to) {
    return directions_[{from, to}];
  }

  std::string name_;
  sim::Simulation& sim_;
  GatewayConfig config_;
  std::map<BusId, Port> ports_;
  std::vector<Route> routes_;
  std::map<std::pair<BusId, BusId>, DirectionStats> directions_;
  // Per egress bus, per egress identifier: FIFO of frames handed to the
  // mailbox but not yet delivered (equal-priority mailbox order is FIFO,
  // and retransmission preserves it, so attribution by id is exact).
  std::map<BusId, std::map<std::uint32_t, std::deque<Transit>>> in_transit_;
  Stats stats_;
};

}  // namespace aces::net

#endif  // ACES_NET_GATEWAY_H
