#include "net/supervisor.h"

#include "support/check.h"

namespace aces::net {

// ----- mitigation builders ----------------------------------------------------

Mitigation Mitigation::gateway_failover(GatewayNode& gw, int disable_route,
                                        int enable_route, sim::SimTime delay) {
  Mitigation m;
  m.name = "gateway_failover";
  m.delay = delay;
  m.fn = [&gw, disable_route, enable_route] {
    if (disable_route >= 0) {
      gw.set_route_enabled(static_cast<std::size_t>(disable_route), false);
    }
    if (enable_route >= 0) {
      gw.set_route_enabled(static_cast<std::size_t>(enable_route), true);
    }
  };
  return m;
}

Mitigation Mitigation::restart_ecu(EcuNode& ecu, sim::SimTime reboot_delay,
                                   sim::SimTime delay) {
  Mitigation m;
  m.name = "restart_ecu";
  m.delay = delay;
  m.fn = [&ecu, reboot_delay] { ecu.restart(reboot_delay); };
  return m;
}

Mitigation Mitigation::detach_node(can::CanBus& bus, can::NodeId node,
                                   sim::SimTime delay) {
  Mitigation m;
  m.name = "detach_node";
  m.delay = delay;
  // The supervisor may live on a different shard than the bus it is
  // silencing; run_on_queue marshals the detach to the bus's shard (an
  // immediate call when they share one).
  m.fn = [&bus, node] {
    sim::run_on_queue(bus.queue(), [&bus, node] { bus.detach(node); });
  };
  return m;
}

// ----- SupervisorNode ---------------------------------------------------------

SupervisorNode::SupervisorNode(sim::Simulation& sim, can::CanBus& bus,
                               BusId bus_id, std::string name)
    : sim_(sim),
      canbus_(bus),
      bus_id_(bus_id),
      name_(std::move(name)),
      node_(bus.attach_node(name_)) {
  canbus_.subscribe(node_, [this](const can::CanFrame& f, sim::SimTime at) {
    on_frame(f, at);
  });
}

SupervisorNode::MonitorId SupervisorNode::add_monitor(Monitor monitor) {
  ACES_CHECK_MSG(!started_, "add monitors before start()");
  ACES_CHECK_MSG(monitor.period > 0, "monitor needs a positive period");
  MonitorState st;
  st.cfg = std::move(monitor);
  monitors_.push_back(std::move(st));
  return static_cast<MonitorId>(monitors_.size() - 1);
}

void SupervisorNode::start() {
  ACES_CHECK_MSG(!started_, "supervisor already started");
  started_ = true;
  for (std::size_t k = 0; k < monitors_.size(); ++k) {
    arm_deadline(k);
  }
}

sim::SimTime SupervisorNode::detection_bound(MonitorId id) const {
  const Monitor& m = monitor(id);
  return m.period + m.window + m.delivery_bound;
}

const SupervisorNode::Monitor& SupervisorNode::monitor(MonitorId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < monitors_.size(),
                 "unknown monitor");
  return monitors_[static_cast<std::size_t>(id)].cfg;
}

const SupervisorNode::MonitorStats& SupervisorNode::stats(MonitorId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < monitors_.size(),
                 "unknown monitor");
  return monitors_[static_cast<std::size_t>(id)].stats;
}

bool SupervisorNode::failed(MonitorId id) const {
  ACES_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < monitors_.size(),
                 "unknown monitor");
  return monitors_[static_cast<std::size_t>(id)].failed;
}

void SupervisorNode::watch_gateway(GatewayNode& gw) {
  gw.on_drop([this](BusId, BusId, std::uint32_t, GatewayNode::DropReason,
                    sim::SimTime) { ++gateway_drops_; });
}

void SupervisorNode::on_frame(const can::CanFrame& frame, sim::SimTime at) {
  for (std::size_t k = 0; k < monitors_.size(); ++k) {
    MonitorState& st = monitors_[k];
    if (frame.id != st.cfg.heartbeat_id) {
      continue;
    }
    ++st.stats.heartbeats;
    if (st.failed) {
      // The producer is back: end the degraded mode and record how long
      // the failure lasted, from the injected fault when known (the
      // end-to-end quantity), else from detection.
      st.failed = false;
      ++st.limp_epoch;  // stops the limp-home chain
      ++st.stats.recoveries;
      const sim::SimTime ref =
          st.fault_ref >= 0 ? st.fault_ref : st.stats.last_detect_at;
      if (ref >= 0) {
        const sim::SimTime latency = at - ref;
        recovery_samples_.push_back(latency);
        if (latency > st.stats.worst_recover_latency) {
          st.stats.worst_recover_latency = latency;
        }
      }
      st.fault_ref = -1;
    }
    if (started_) {
      arm_deadline(k);
    }
  }
}

void SupervisorNode::arm_deadline(std::size_t k) {
  MonitorState& st = monitors_[k];
  const std::uint64_t epoch = ++st.deadline_epoch;
  sim_.schedule_in(st.cfg.period + st.cfg.window,
                   [this, k, epoch] { on_deadline(k, epoch); });
}

void SupervisorNode::on_deadline(std::size_t k, std::uint64_t epoch) {
  MonitorState& st = monitors_[k];
  if (epoch != st.deadline_epoch || st.failed) {
    return;  // superseded by a heartbeat that arrived in time
  }
  const sim::SimTime now = sim_.now();
  st.failed = true;
  ++st.stats.misses;
  st.stats.last_detect_at = now;
  // Fault-to-detection latency against the monitored ECU's injection
  // record, when we have one — the measured side of detection_bound().
  st.fault_ref = -1;
  if (st.cfg.ecu != nullptr && st.cfg.ecu->last_fault_at() >= 0) {
    st.fault_ref = st.cfg.ecu->last_fault_at();
    const sim::SimTime latency = now - st.fault_ref;
    if (latency > st.stats.worst_detect_latency) {
      st.stats.worst_detect_latency = latency;
    }
  }
  for (const Mitigation& m : st.cfg.mitigations) {
    sim_.schedule_in(m.delay, [this, k, fn = m.fn] {
      ++monitors_[k].stats.mitigations;
      fn();
    });
  }
  if (st.cfg.limp_frame && st.cfg.limp_period > 0) {
    limp_tick(k, ++st.limp_epoch);
  }
}

void SupervisorNode::limp_tick(std::size_t k, std::uint64_t epoch) {
  MonitorState& st = monitors_[k];
  if (!st.failed || epoch != st.limp_epoch) {
    return;
  }
  can::CanFrame f = *st.cfg.limp_frame;
  f.timestamp = sim_.now();
  canbus_.send(node_, f);
  ++st.stats.limp_frames;
  sim_.schedule_in(st.cfg.limp_period,
                   [this, k, epoch] { limp_tick(k, epoch); });
}

}  // namespace aces::net
