// net::NetworkBuilder — declarative whole-vehicle network topologies.
//
// Where SystemBuilder describes one ECU, NetworkBuilder describes one
// vehicle: N CAN buses at independent bit rates, ECUs attached at either
// simulation fidelity through the same ecu() call, and store-and-forward
// gateways bridging the segments — all advanced by one sim::Simulation
// time base, so a 24-ECU three-bus vehicle is driven exactly like a single
// bound System:
//
//   net::NetworkBuilder nb;
//   const net::BusId pt   = nb.bus("powertrain", 500'000);
//   const net::BusId body = nb.bus("body", 125'000);
//   nb.ecu(pt, cpu::profiles::modern_mcu().name("engine"), engine_program);
//   nb.ecu(body, "locks", {{"lock_ctl", 5, 1 * kMillisecond,
//                           20 * kMillisecond}});
//   const net::GatewayId gw = nb.gateway("central", {200 * kMicrosecond, 8});
//   nb.route(gw, {pt, body, 0x0A0});
//   net::Network net = nb.build();
//   net.run_until(5 * sim::kSecond);
//
// The builder is a pure description (copyable, reusable); build()
// materializes buses, ECU nodes and gateways in declaration order, which
// fixes CAN node indices and the co-simulation round-robin order — the
// whole network is deterministic, double runs are bit-identical.
//
// Analysis: the end-to-end latency of routed traffic is bounded by
// sched::path_rta (per-bus can_rta composed across gateway hops); measured
// end-to-end latency comes from CanFrame::timestamp, which send_every and
// model-task transmission stamp at the queue instant and gateways preserve.
#ifndef ACES_NET_NETWORK_H
#define ACES_NET_NETWORK_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/gateway.h"
#include "net/node.h"
#include "net/supervisor.h"
#include "sim/sharded.h"

namespace aces::net {

using EcuId = int;
using GatewayId = int;

class Network;

class NetworkBuilder {
 public:
  NetworkBuilder() = default;

  // Co-simulation quantum for the built network's time base.
  NetworkBuilder& quantum(sim::SimTime q) {
    quantum_ = q;
    return *this;
  }

  // Sharding policy. build() partitions the topology into gateway-bounded
  // shards: each bus/fabric and its attached ECUs live on one sim::Shard,
  // gateways are the only cross-shard edges, and the minimum cross-shard
  // forwarding latency becomes the synchronization lookahead. Buses
  // bridged at zero latency (or by a direction with mixed per-route
  // latencies, where the egress admission replay would lose the serial
  // order) are merged into one shard. 0 (default) = as many shards as the
  // topology allows; 1 = single shard, byte-for-byte the pre-sharding
  // scheduler; k >= 2 caps the count by merging the tightest-coupled
  // shards first.
  NetworkBuilder& shards(unsigned n) {
    shards_ = n;
    return *this;
  }

  // Worker threads for the built network's epoch fan-out
  // (ShardedSimulation::set_threads): 0 (default) = min(hardware
  // concurrency, shard count). Thread count never changes results.
  NetworkBuilder& threads(unsigned n) {
    threads_ = n;
    return *this;
  }

  // Declares a CAN bus. Bit rates are independent per bus; a non-zero
  // `data_bitrate_bps` (>= the arbitration rate) makes the bus CAN FD
  // capable — FD frames switch to it for their data phase.
  BusId bus(std::string name, std::uint32_t bitrate_bps,
            std::uint32_t data_bitrate_bps = 0);

  // Declares a FlexRay fabric segment. It shares the BusId space with CAN
  // buses (gateway routes reference either kind), but carries FlexRay
  // traffic: a static TDMA segment (optionally assigned via
  // flexray_static) and a minislot dynamic segment that translating
  // gateway routes read and write. ECUs cannot attach to it — cross into
  // it through a gateway, as in a real zonal architecture.
  BusId flexray(std::string name, FlexrayFabricConfig config);
  // Installs the static schedule replayed by `id` (checked feasible at
  // build). At most once per fabric.
  NetworkBuilder& flexray_static(BusId id,
                                 std::vector<sched::FlexrayFrame> frames);

  // ISS fidelity: a cycle-accurate ECU described by `system` (name, clock
  // and memory map come from the SystemBuilder; the CAN controller and the
  // GuestProgram's interrupt controller are added automatically).
  EcuId ecu(BusId bus, cpu::SystemBuilder system, GuestProgram program,
            can::CanController::Config controller = {});

  // Kernel-model fidelity: an OSEK-like workload model with optional
  // per-task transmission and RX-driven activation.
  EcuId ecu(BusId bus, std::string name, std::vector<ModelTask> tasks,
            sim::SimTime context_switch_cost = 0);

  GatewayId gateway(std::string name, GatewayConfig config = {});
  NetworkBuilder& route(GatewayId gateway, Route route);

  // Translating routes (see net/gateway.h). packed_route emits onto a CAN
  // bus (classic or FD per the route's egress descriptor);
  // packed_route_flexray registers a dynamic frame named `dyn_name` under
  // `dyn_slot_id` on the egress fabric at build time (owned by the
  // gateway's node there; `dyn_max_bytes` 0 = the packing-table extent)
  // and emits onto it. unpack_route slices a CAN/CAN FD ingress frame;
  // unpack_route_flexray matches the fabric's dynamic frame under
  // `match_slot_id` — resolvable regardless of which gateway registers it,
  // in any declaration order.
  NetworkBuilder& packed_route(GatewayId gateway, PackedRoute route);
  NetworkBuilder& packed_route_flexray(GatewayId gateway, PackedRoute route,
                                       std::string dyn_name,
                                       unsigned dyn_slot_id,
                                       unsigned dyn_max_bytes = 0);
  NetworkBuilder& unpack_route(GatewayId gateway, UnpackRoute route);
  NetworkBuilder& unpack_route_flexray(GatewayId gateway, UnpackRoute route,
                                       unsigned match_slot_id);

  // Materializes the vehicle (guaranteed copy elision: constructed in
  // place at the call site, never moved — bindings and bus references
  // stay valid for the Network's lifetime).
  [[nodiscard]] Network build() const;

 private:
  friend class Network;

  struct BusSpec {
    enum class Kind { kCan, kFlexray };
    Kind kind = Kind::kCan;
    std::string name;
    std::uint32_t bitrate_bps = 0;       // CAN arbitration rate
    std::uint32_t data_bitrate_bps = 0;  // CAN FD data rate; 0 = classic
    FlexrayFabricConfig flexray;
    std::vector<sched::FlexrayFrame> static_frames;
    bool have_static = false;
  };
  struct IssSpec {
    BusId bus = -1;
    cpu::SystemBuilder system;
    GuestProgram program;
    can::CanController::Config controller;
  };
  struct ModelSpec {
    BusId bus = -1;
    std::string name;
    std::vector<ModelTask> tasks;
    sim::SimTime switch_cost = 0;
  };
  struct EcuOrder {  // declaration order across both fidelities
    bool iss = false;
    std::size_t index = 0;
  };
  struct PackedRouteSpec {
    PackedRoute route;
    unsigned dyn_slot_id = 0;  // 0 = CAN egress
    unsigned dyn_max_bytes = 0;
    std::string dyn_name;
  };
  struct UnpackRouteSpec {
    UnpackRoute route;
    unsigned match_slot_id = 0;  // 0 = CAN ingress (route.match_id)
  };
  struct GatewaySpec {
    std::string name;
    GatewayConfig config;
    std::vector<Route> routes;
    std::vector<PackedRouteSpec> packed;
    std::vector<UnpackRouteSpec> unpack;
  };

  void check_bus(BusId id) const;
  void check_can(BusId id) const;
  void check_flexray(BusId id) const;
  GatewaySpec& gateway_spec(GatewayId id);

  sim::SimTime quantum_ = 50 * sim::kMicrosecond;
  unsigned shards_ = 0;
  unsigned threads_ = 0;
  std::vector<BusSpec> buses_;
  std::vector<EcuOrder> order_;
  std::vector<IssSpec> iss_;
  std::vector<ModelSpec> models_;
  std::vector<GatewaySpec> gateways_;
};

// The instantiated vehicle network. Owns the simulation, the buses, every
// ECU node and every gateway; pinned in memory (bindings and subscriptions
// hold references into the object).
class Network {
 public:
  explicit Network(const NetworkBuilder& builder);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::ShardedSimulation& simulation() noexcept { return sim_; }
  [[nodiscard]] sim::SimTime now() const { return sim_.now(); }

  // The shard-local scheduler a segment lives on: the place to schedule
  // events that touch that bus (a single-shard network has exactly one).
  [[nodiscard]] sim::Simulation& shard(BusId bus) {
    return *shard_of_bus_.at(static_cast<std::size_t>(bus));
  }
  [[nodiscard]] std::size_t shard_count() const {
    return sim_.shard_count();
  }
  [[nodiscard]] sim::SimTime lookahead() const { return sim_.lookahead(); }

  // Segment count (CAN buses + FlexRay fabrics share the BusId space).
  [[nodiscard]] std::size_t bus_count() const { return buses_.size(); }
  [[nodiscard]] std::size_t ecu_count() const { return ecus_.size(); }
  [[nodiscard]] bool is_can(BusId id) const {
    return buses_[static_cast<std::size_t>(id)] != nullptr;
  }
  [[nodiscard]] can::CanBus& bus(BusId id);
  [[nodiscard]] FlexrayFabric& flexray(BusId id);
  [[nodiscard]] const std::string& bus_name(BusId id) const {
    return bus_names_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] EcuNode& ecu(EcuId id) {
    return *ecus_[static_cast<std::size_t>(id)];
  }
  // Typed accessors (checked): the fidelity-specific surfaces.
  [[nodiscard]] IssEcuNode& iss(EcuId id);
  [[nodiscard]] ModelEcuNode& model(EcuId id);
  [[nodiscard]] std::size_t gateway_count() const { return gateways_.size(); }
  [[nodiscard]] GatewayNode& gateway(GatewayId id) {
    return *gateways_[static_cast<std::size_t>(id)];
  }

  // Adds an alive-supervision watchdog node on CAN bus `bus` (post-build:
  // supervisors are runtime dependability infrastructure, configured
  // against the materialized ECUs/gateways). The returned reference stays
  // valid for the Network's lifetime.
  SupervisorNode& add_supervisor(BusId bus, std::string name);
  [[nodiscard]] std::size_t supervisor_count() const {
    return supervisors_.size();
  }
  [[nodiscard]] SupervisorNode& supervisor(std::size_t k) {
    return *supervisors_[k];
  }

  void run_until(sim::SimTime horizon) { sim_.run_until(horizon); }
  void run_for(sim::SimTime delta) { sim_.run_for(delta); }

  // Periodic application traffic from `ecu`'s bus node: first send now,
  // then every `period`. `mutate` (optional) edits the frame before each
  // send (payload counters, toggles); each copy is stamped with its queue
  // instant for end-to-end measurement.
  void send_every(EcuId ecu, sim::SimTime period, can::CanFrame frame,
                  std::function<void(can::CanFrame&)> mutate = nullptr);
  // One-shot convenience with the same stamping.
  void send(EcuId ecu, can::CanFrame frame);

 private:
  sim::ShardedSimulation sim_;
  // Parallel, indexed by BusId: the shard each segment was assigned to.
  std::vector<sim::Simulation*> shard_of_bus_;
  std::vector<std::string> bus_names_;
  // Parallel, indexed by BusId: exactly one entry is non-null per id.
  std::vector<std::unique_ptr<can::CanBus>> buses_;
  std::vector<std::unique_ptr<FlexrayFabric>> flexrays_;
  std::vector<std::unique_ptr<EcuNode>> ecus_;
  std::vector<std::unique_ptr<GatewayNode>> gateways_;
  std::vector<std::unique_ptr<SupervisorNode>> supervisors_;
};

inline Network NetworkBuilder::build() const { return Network(*this); }

}  // namespace aces::net

#endif  // ACES_NET_NETWORK_H
