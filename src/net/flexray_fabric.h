// FlexRay fabric simulator: static TDMA segment + minislot dynamic segment.
//
// Promotes the schedule replay that used to live in
// sched::FlexrayStaticDriver into a full bus participant, joined to the
// shared event queue exactly like can::CanBus. Every communication cycle
// (fixed length, cycle counter wrapping at 64) runs
//
//   static segment    the feasible (slot, base cycle, repetition) schedule
//                     from sched::build_static_schedule, replayed slot by
//                     slot (an observer callback sees each instance);
//   dynamic segment   a minislot scheme: a slot counter walks dynamic slot
//                     ids in priority order (1 = highest). An id whose
//                     owner has a frame queued occupies as many minislots
//                     as the frame's wire time needs — but only if that
//                     occupancy still fits the cycle's minislot budget
//                     (the pLatestTx rule); otherwise, and for idle ids,
//                     the counter consumes exactly one minislot.
//
// Dynamic frames carry an opaque payload (up to 64 bytes) with an origin
// timestamp preserved across gateways, so cross-fabric end-to-end latency
// stays measurable just like on CAN. Per-frame transmit statistics
// (sent / deferrals / worst queue-to-delivery latency) mirror
// can::MessageStats, and dynamic_hop() packages the matching worst-case
// bound (sched::flexray_dynamic_hop) for path_rta composition.
//
// Wire model for the dynamic frame duration: TSS/FSS/FES framing is 11 bit
// times and every frame byte (5 header + 3 trailer CRC + payload) costs 10
// bits with its byte-start sequence, so a frame with n payload bytes is
// 91 + 10n bits at the configured wire bit rate, rounded up to whole
// minislots. The analysis uses the same rounding on the registered maximum
// payload, so the simulated occupancy can never exceed the analyzed one.
//
// Everything is deterministic: all state advances on the owning event
// queue, and identical send sequences replay bit-identically.
#ifndef ACES_NET_FLEXRAY_FABRIC_H
#define ACES_NET_FLEXRAY_FABRIC_H

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sched/flexray.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace aces::net {

// Bus guardian for the dynamic segment: an independent watcher that knows
// each node's communication budget and cuts off a node exceeding it — the
// FlexRay answer to the babbling-idiot failure. Per communication cycle a
// node may occupy at most `node_budget_minislots`; a grant that would
// cross the budget is denied, the slot idles, and the node is *latched
// off* the dynamic segment (its queued frames never transmit) until
// guardian_release(). Deterministic: the cutoff happens at the exact
// decision point the budget would be exceeded.
struct BusGuardianConfig {
  bool enabled = false;
  unsigned node_budget_minislots = 0;
};

struct FlexrayFabricConfig {
  // Cycle geometry + static segment (sched::FlexrayConfig: cycle length,
  // static slot count, static slot length).
  sched::FlexrayConfig static_cfg;
  // Dynamic segment, starting right after the static segment: 0 minislots
  // is a static-only fabric. static + dynamic must fit the cycle.
  unsigned minislots = 0;
  sim::SimTime minislot = 10 * sim::kMicrosecond;
  std::uint32_t bitrate_bps = 10'000'000;  // wire rate (FlexRay: 10 Mbit/s)
  BusGuardianConfig guardian;
};

class FlexrayFabric {
 public:
  using NodeId = int;
  using DynId = int;
  static constexpr unsigned kMaxPayload = 64;

  struct DynPayload {
    unsigned bytes = 0;
    std::array<std::uint8_t, kMaxPayload> data{};
    // Origin timestamp (ns), metadata only — stamped at first queuing when
    // unset, preserved by store-and-forward gateways (the CanFrame
    // convention), so receivers measure true end-to-end latency.
    std::int64_t timestamp = -1;
  };

  struct DynFrameInfo {
    std::string name;
    NodeId node = -1;        // owning (transmitting) node
    unsigned slot_id = 0;    // dynamic priority, 1 = highest; unique
    unsigned max_bytes = 0;  // registered payload ceiling
    unsigned minislots = 0;  // occupancy of a max-size transmission
  };

  struct DynStats {
    std::uint64_t sent = 0;
    // Decision points that passed while a frame was pending but its
    // occupancy no longer fit the cycle's remaining minislot budget.
    std::uint64_t deferrals = 0;
    sim::SimTime worst_latency = 0;  // queue -> delivery
    sim::SimTime total_latency = 0;
  };

  // Static-slot observer: each owned slot instance, at its start.
  using SlotFn = std::function<void(const sched::FlexrayFrame& frame,
                                    const sched::FlexrayAssignment& assignment,
                                    sim::SimTime slot_start)>;
  // Dynamic delivery: (frame registry entry, payload, end-of-frame time).
  using DynRxHandler = std::function<void(
      const DynFrameInfo&, const DynPayload&, sim::SimTime)>;

  FlexrayFabric(sim::EventQueue& queue, FlexrayFabricConfig config);
  FlexrayFabric(sim::Simulation& sim, FlexrayFabricConfig config)
      : FlexrayFabric(sim.queue(), config) {}

  // Pinned: armed queue events capture `this`.
  FlexrayFabric(const FlexrayFabric&) = delete;
  FlexrayFabric& operator=(const FlexrayFabric&) = delete;

  NodeId attach_node(std::string name);

  // ----- static segment ---------------------------------------------------
  // Builds the static schedule for `frames` (checked feasible) and installs
  // it for replay. Call at most once, before start().
  void assign_static(std::vector<sched::FlexrayFrame> frames);
  [[nodiscard]] const sched::FlexraySchedule& static_schedule() const {
    return static_schedule_;
  }
  // Optional observer of every replayed static slot instance.
  void on_static_slot(SlotFn fn);

  // ----- dynamic segment --------------------------------------------------
  // Registers a dynamic frame owned by `owner`. `slot_id` (>= 1, unique on
  // the fabric) is the minislot-counter priority; `max_bytes` bounds every
  // payload sent under this id and fixes the occupancy the analysis
  // charges. Requires a configured dynamic segment large enough for the
  // frame. May be called after start(); the walk reads the registry at
  // each cycle's decision points.
  DynId add_dynamic_frame(NodeId owner, std::string name, unsigned slot_id,
                          unsigned max_bytes);

  // Queues a payload for transmission under `id` (at most one transmission
  // per id per cycle; the queue carries any backlog). Keeping the producer
  // period >= the cycle length keeps the queue bounded — and is what the
  // dynamic_hop bound assumes.
  void send_dynamic(DynId id, const DynPayload& payload);

  // Delivery of every dynamic frame to `node` (transmissions by `node`
  // itself excluded), at end of frame.
  void subscribe(NodeId node, DynRxHandler handler);
  // Transmit-complete: fires on the owning node at end of frame.
  void subscribe_tx(NodeId node, DynRxHandler handler);

  [[nodiscard]] const DynFrameInfo& dyn_info(DynId id) const;
  [[nodiscard]] const DynStats& dyn_stats(DynId id) const;
  // Checked reverse lookup: the registered frame under `slot_id`.
  [[nodiscard]] DynId dyn_by_slot(unsigned slot_id) const;

  // ----- analysis ---------------------------------------------------------
  // Worst-case parameters of `id` against the current registry (every
  // higher-priority id assumed to transmit a max-size frame each cycle).
  [[nodiscard]] sched::FlexrayDynHopParams dynamic_hop_params(
      DynId id, sim::SimTime deadline) const;
  // The same, packaged as a path_rta hop (sched::flexray_dynamic_hop).
  [[nodiscard]] sched::PathHop dynamic_hop(DynId id, sim::SimTime deadline,
                                           sim::SimTime gateway_latency = 0,
                                           int bus = -1) const;

  // ----- runtime ----------------------------------------------------------
  // Arms communication cycle 0 at the current instant; cycles run forever
  // (the cycle counter wraps at 64) until the owning queue stops.
  void start();

  [[nodiscard]] unsigned cycle() const noexcept { return cycle_; }
  [[nodiscard]] std::uint64_t cycles_run() const noexcept {
    return cycles_run_;
  }
  [[nodiscard]] std::uint64_t slots_played() const noexcept {
    return slots_played_;
  }
  [[nodiscard]] sim::SimTime bit_time() const noexcept { return bit_time_; }
  // Wire bits / whole-minislot occupancy of an n-byte dynamic frame.
  [[nodiscard]] unsigned frame_bits(unsigned bytes) const {
    return 91 + 10 * bytes;
  }
  [[nodiscard]] unsigned frame_minislots(unsigned bytes) const;

  // ----- bus guardian -----------------------------------------------------
  struct GuardianStats {
    std::uint64_t cutoffs = 0;         // nodes latched off (budget crossed)
    std::uint64_t blocked_grants = 0;  // decision points denied while latched
  };
  [[nodiscard]] const GuardianStats& guardian_stats() const {
    return guardian_stats_;
  }
  [[nodiscard]] bool guardian_blocked(NodeId node) const;
  // Re-admits a latched-off node (maintenance action after the babbling
  // fault is cleared); its queued frames compete again next cycle.
  void guardian_release(NodeId node);

  // Clears the per-frame statistics (not the protocol state: pending
  // queues, cycle counters and armed events are untouched), mirroring
  // CanBus::reset_stats for campaign reuse.
  void reset_stats();

 private:
  struct QueuedPayload {
    DynPayload payload;
    sim::SimTime queued_at = 0;
  };
  struct DynFrame {
    DynFrameInfo info;
    std::deque<QueuedPayload> queue;
    DynStats stats;
  };
  struct Node {
    std::string name;
    std::vector<DynRxHandler> handlers;
    std::vector<DynRxHandler> tx_handlers;
  };

  void arm_cycle(sim::SimTime cycle_start);
  // One decision point of the dynamic walk: minislot counter at `slot_id`,
  // `used` minislots consumed so far in this cycle's dynamic segment.
  void walk_dynamic(sim::SimTime t, unsigned slot_id, unsigned used);
  void deliver(DynFrame& f, const DynPayload& payload, sim::SimTime at);

  sim::EventQueue& queue_;
  FlexrayFabricConfig config_;
  sim::SimTime bit_time_ = 0;
  sim::SimTime static_segment_ = 0;  // static slots * slot length
  std::vector<Node> nodes_;
  std::vector<sched::FlexrayFrame> static_frames_;
  sched::FlexraySchedule static_schedule_;
  bool have_static_ = false;
  SlotFn on_slot_;
  std::vector<DynFrame> dyn_frames_;
  unsigned max_slot_id_ = 0;
  bool started_ = false;
  unsigned cycle_ = 0;  // communication cycle counter, wraps at 64
  std::uint64_t cycles_run_ = 0;
  std::uint64_t slots_played_ = 0;
  GuardianStats guardian_stats_;
  std::vector<std::uint8_t> guardian_latched_;   // per node, until release
  std::vector<unsigned> guardian_cycle_use_;     // minislots used this cycle
};

}  // namespace aces::net

#endif  // ACES_NET_FLEXRAY_FABRIC_H
