#include "net/gateway.h"

#include <algorithm>

#include "support/check.h"

namespace aces::net {

using sim::SimTime;

GatewayNode::GatewayNode(std::string name, GatewayConfig config)
    : name_(std::move(name)), config_(config) {
  ACES_CHECK_MSG(config_.queue_depth > 0,
                 "gateway queue_depth must be >= 1");
  ACES_CHECK_MSG(config_.forwarding_latency >= 0,
                 "gateway forwarding latency cannot be negative");
}

void GatewayNode::join(BusId id, can::CanBus& bus, sim::Simulation& shard) {
  ACES_CHECK_MSG(ports_.find(id) == ports_.end(),
                 "gateway '" + name_ + "' already joined this bus");
  Port port;
  port.bus = &bus;
  port.node = bus.attach_node(name_);
  port.shard = &shard;
  ports_[id] = port;
  in_transit_[id];  // pre-create: the map skeleton is immutable at runtime
  bus.subscribe(port.node,
                [this, id](const can::CanFrame& f, SimTime at) {
                  on_rx(id, f, at);
                });
  bus.subscribe_tx(port.node,
                   [this, id](const can::CanFrame& f, SimTime at) {
                     on_tx_done(id, f, at);
                   });
}

void GatewayNode::join_flexray(BusId id, FlexrayFabric& fabric,
                               sim::Simulation& shard) {
  ACES_CHECK_MSG(ports_.find(id) == ports_.end(),
                 "gateway '" + name_ + "' already joined this bus");
  Port port;
  port.flexray = &fabric;
  port.node = fabric.attach_node(name_);
  port.shard = &shard;
  ports_[id] = port;
  fr_in_transit_[id];  // pre-create (immutable skeleton at runtime)
  fabric.subscribe(port.node,
                   [this, id](const FlexrayFabric::DynFrameInfo& info,
                              const FlexrayFabric::DynPayload& payload,
                              SimTime at) {
                     on_flexray_rx(id, info, payload, at);
                   });
  fabric.subscribe_tx(port.node,
                      [this, id](const FlexrayFabric::DynFrameInfo& info,
                                 const FlexrayFabric::DynPayload&,
                                 SimTime at) {
                        on_flexray_tx_done(id, info, at);
                      });
}

const GatewayNode::Port& GatewayNode::port_of(BusId id) const {
  const auto it = ports_.find(id);
  ACES_CHECK_MSG(it != ports_.end(),
                 "gateway '" + name_ + "' is not on this bus");
  return it->second;
}

void GatewayNode::add_route(const Route& route) {
  ACES_CHECK_MSG(route.from != route.to,
                 "gateway route cannot loop a bus onto itself");
  const Port& in = port_of(route.from);
  const Port& out = port_of(route.to);
  ACES_CHECK_MSG(in.bus != nullptr && out.bus != nullptr,
                 "plain routes connect CAN ports (use packed/unpack routes "
                 "to cross into FlexRay)");
  if (route.fd && *route.fd) {
    ACES_CHECK_MSG(out.bus->fd_enabled(),
                   "route promotes to CAN FD but the egress bus has no "
                   "data bit rate");
  }
  routes_.push_back(route);
  dir_state(route.from, route.to);  // pre-create: no map mutation at runtime
}

void GatewayNode::add_packed_route(const PackedRoute& route) {
  ACES_CHECK_MSG(route.from != route.to,
                 "gateway route cannot loop a bus onto itself");
  const Port& in = port_of(route.from);
  const Port& out = port_of(route.to);
  ACES_CHECK_MSG(in.bus != nullptr,
                 "packed routes aggregate CAN ingress frames");
  ACES_CHECK_MSG(!route.table.empty(), "packed route needs a packing table");
  unsigned extent = 0;
  bool trigger_in_table = false;
  for (const PackSlot& slot : route.table) {
    ACES_CHECK_MSG(slot.bytes >= 1, "packing slot cannot be empty");
    ACES_CHECK_MSG(slot.offset + slot.bytes <= FlexrayFabric::kMaxPayload,
                   "packing slot exceeds the 64-byte packing buffer");
    extent = std::max(extent, slot.offset + slot.bytes);
    trigger_in_table = trigger_in_table || slot.src_id == route.trigger_id;
  }
  ACES_CHECK_MSG(trigger_in_table,
                 "the trigger id must be one of the packing table's ids");
  PackedRoute stored = route;
  if (route.egress_dyn >= 0) {
    ACES_CHECK_MSG(out.flexray != nullptr,
                   "egress_dyn set but the egress port is not FlexRay");
    const FlexrayFabric::DynFrameInfo& info =
        out.flexray->dyn_info(route.egress_dyn);
    ACES_CHECK_MSG(info.node == out.node,
                   "the packed route's dynamic frame must be owned by the "
                   "gateway's node on the egress fabric");
    if (stored.egress_bytes == 0) {
      stored.egress_bytes = extent;
    }
    ACES_CHECK_MSG(stored.egress_bytes >= extent,
                   "FlexRay egress payload smaller than the packing table");
    ACES_CHECK_MSG(stored.egress_bytes <= info.max_bytes,
                   "FlexRay egress payload exceeds the registered ceiling");
  } else {
    ACES_CHECK_MSG(out.bus != nullptr,
                   "packed route egress port is neither CAN nor FlexRay");
    const unsigned payload =
        route.egress_fd ? can::fd_payload_bytes(route.egress_dlc)
                        : route.egress_dlc;
    ACES_CHECK_MSG(!route.egress_fd || out.bus->fd_enabled(),
                   "packed route emits CAN FD but the egress bus has no "
                   "data bit rate");
    ACES_CHECK_MSG(route.egress_fd || route.egress_dlc <= 8,
                   "classic packed egress is limited to dlc 0..8");
    ACES_CHECK_MSG(payload >= extent,
                   "packed egress frame smaller than the packing table");
  }
  packed_routes_.push_back(std::move(stored));
  pack_state_.emplace_back();
  dir_state(route.from, route.to);  // pre-create: no map mutation at runtime
}

void GatewayNode::add_unpack_route(const UnpackRoute& route) {
  ACES_CHECK_MSG(route.from != route.to,
                 "gateway route cannot loop a bus onto itself");
  const Port& in = port_of(route.from);
  const Port& out = port_of(route.to);
  ACES_CHECK_MSG(out.bus != nullptr,
                 "unpack routes emit classic CAN frames");
  if (in.flexray != nullptr) {
    ACES_CHECK_MSG(route.match_dyn >= 0,
                   "FlexRay ingress unpack route needs match_dyn");
    const FlexrayFabric::DynFrameInfo& info =
        in.flexray->dyn_info(route.match_dyn);
    ACES_CHECK_MSG(info.node != in.node,
                   "the gateway never receives its own dynamic frames");
  } else {
    ACES_CHECK_MSG(route.match_dyn < 0,
                   "match_dyn is only meaningful on a FlexRay ingress port");
  }
  ACES_CHECK_MSG(!route.table.empty(), "unpack route needs a slicing table");
  for (const UnpackSlot& slot : route.table) {
    ACES_CHECK_MSG(slot.dlc >= 1 && slot.dlc <= 8,
                   "unpacked frames are classic CAN (dlc 1..8)");
    ACES_CHECK_MSG(slot.offset + slot.dlc <= FlexrayFabric::kMaxPayload,
                   "unpack slice exceeds the 64-byte payload");
  }
  unpack_routes_.push_back(route);
  unpack_stats_.emplace_back();
  dir_state(route.from, route.to);  // pre-create: no map mutation at runtime
}

void GatewayNode::set_route_enabled(std::size_t route, bool enabled) {
  ACES_CHECK_MSG(route < routes_.size(), "unknown gateway route");
  // The enabled flag is read by on_rx on the route's ingress shard; apply
  // the toggle there (immediate when called from that shard or outside a
  // run, next epoch boundary otherwise — the supervision-latency skew is
  // bounded by one epoch and deterministic).
  sim::run_on(*ports_.at(routes_[route].from).shard,
              [this, route, enabled] { routes_[route].enabled = enabled; });
}

can::NodeId GatewayNode::node_on(BusId bus) const { return port_of(bus).node; }

FlexrayFabric::NodeId GatewayNode::flexray_node_on(BusId bus) const {
  const Port& port = port_of(bus);
  ACES_CHECK_MSG(port.flexray != nullptr,
                 "gateway '" + name_ + "' has no FlexRay port on this bus");
  return port.node;
}

GatewayNode::DirectionStats GatewayNode::direction(BusId from,
                                                   BusId to) const {
  const auto it = directions_.find({from, to});
  if (it == directions_.end()) {
    return DirectionStats{};
  }
  DirectionStats d = it->second.stats;
  // Unreplayed egress completions have already left the gateway on the
  // wire — report the true in-flight count.
  d.queued -= static_cast<unsigned>(it->second.pending_release.size());
  return d;
}

GatewayNode::Stats GatewayNode::stats() const {
  Stats s;
  for (const auto& [key, st] : directions_) {
    s.frames_forwarded += st.stats.forwarded;
    s.frames_delivered += st.stats.delivered;
    s.frames_dropped += st.stats.dropped_overflow + st.stats.dropped_translation;
  }
  return s;
}

const GatewayNode::TranslationStats& GatewayNode::packed_stats(
    std::size_t route) const {
  ACES_CHECK_MSG(route < pack_state_.size(), "unknown packed route");
  return pack_state_[route].stats;
}

const GatewayNode::TranslationStats& GatewayNode::unpack_stats(
    std::size_t route) const {
  ACES_CHECK_MSG(route < unpack_stats_.size(), "unknown unpack route");
  return unpack_stats_[route];
}

bool GatewayNode::translate_format(const Route& route,
                                   can::CanFrame& out) const {
  if (route.fd) {
    if (*route.fd && !out.fd) {
      if (out.rtr) {
        return false;  // CAN FD has no remote frames
      }
      out.fd = true;
    } else if (!*route.fd && out.fd) {
      const unsigned payload = can::fd_payload_bytes(out.dlc);
      if (payload > 8) {
        return false;  // does not fit a classic frame
      }
      out.dlc = payload;  // DLC codes 0..8 are their own byte counts
      out.fd = false;
    }
  }
  if (out.fd && route.brs) {
    out.brs = *route.brs;
  }
  return true;
}

void GatewayNode::emit_drop(BusId from, BusId to, std::uint32_t egress_id,
                            DropReason reason, SimTime at) {
  for (const DropHandler& h : drop_handlers_) {
    h(from, to, egress_id, reason, at);
  }
}

bool GatewayNode::admit(BusId from, BusId to, std::uint32_t egress_id,
                        SimTime at) {
  DirectionState& st = dir_state(from, to);
  DirectionStats& d = st.stats;
  // Cross-shard directions decide admission on the egress shard (at
  // ingress_at + latency) but must reproduce the serial ingress-time
  // decision bit for bit: every egress-wire completion stamped at or
  // before this frame's ingress instant freed its slot first in the
  // serial interleaving, so replay those releases before judging the
  // queue. Same-shard directions keep the backlog empty and fall straight
  // through to the historical path.
  while (!st.pending_release.empty() && st.pending_release.front() <= at) {
    st.pending_release.pop_front();
    ACES_CHECK(d.queued > 0);
    --d.queued;
  }
  if (d.queued >= config_.queue_depth) {
    // Bounded store-and-forward buffer: overload drops, it never queues
    // unboundedly — and the drop is visible to the analysis story.
    ++d.dropped_overflow;
    emit_drop(from, to, egress_id, DropReason::overflow, at);
    return false;
  }
  ++d.queued;
  d.peak_queued = std::max(d.peak_queued, d.queued);
  ++d.forwarded;
  return true;
}

void GatewayNode::credit_emitted(int packed_route, int unpack_route) {
  if (packed_route >= 0) {
    ++pack_state_[static_cast<std::size_t>(packed_route)].stats.emitted;
  }
  if (unpack_route >= 0) {
    ++unpack_stats_[static_cast<std::size_t>(unpack_route)].emitted;
  }
}

void GatewayNode::queue_can_egress(BusId from, BusId to, can::CanFrame out,
                                   SimTime ingress_at, SimTime latency,
                                   int packed_route, int unpack_route) {
  // After the processing latency the frame enters the egress mailbox and
  // competes in arbitration like locally-originated traffic. The origin
  // timestamp rides along untouched (bus.send only stamps negatives).
  // Admission (and the emitted credit it gates) happens here: at ingress
  // time on a same-shard direction, replayed on the egress shard on a
  // cross-shard one.
  const auto deliver = [this, from, to, out, ingress_at, packed_route,
                        unpack_route] {
    Transit t;
    t.from = from;
    t.ingress_at = ingress_at;
    t.packed_route = packed_route;
    t.unpack_route = unpack_route;
    in_transit_[to][out.id].push_back(t);
    Port& port = ports_[to];
    port.bus->send(port.node, out);
  };
  Port& in = ports_[from];
  Port& egress = ports_[to];
  if (in.shard == egress.shard) {
    if (!admit(from, to, out.id, ingress_at)) {
      return;
    }
    credit_emitted(packed_route, unpack_route);
    in.shard->schedule_in(latency, deliver);
    return;
  }
  in.shard->post_cross(
      *egress.shard, ingress_at + latency,
      [this, from, to, out, ingress_at, packed_route, unpack_route, deliver] {
        if (!admit(from, to, out.id, ingress_at)) {
          return;
        }
        credit_emitted(packed_route, unpack_route);
        deliver();
      });
}

void GatewayNode::queue_flexray_egress(BusId from, BusId to,
                                       FlexrayFabric::DynId dyn,
                                       FlexrayFabric::DynPayload payload,
                                       SimTime ingress_at, SimTime latency,
                                       int packed_route) {
  const int slot_key =
      static_cast<int>(ports_[to].flexray->dyn_info(dyn).slot_id);
  const std::uint32_t egress_id = packed_routes_[static_cast<std::size_t>(
      packed_route)].egress_id;
  const auto deliver = [this, from, to, dyn, slot_key,
                        payload = std::move(payload), ingress_at,
                        packed_route] {
    Transit t;
    t.from = from;
    t.ingress_at = ingress_at;
    t.packed_route = packed_route;
    fr_in_transit_[to][slot_key].push_back(t);
    ports_[to].flexray->send_dynamic(dyn, payload);
  };
  Port& in = ports_[from];
  Port& egress = ports_[to];
  if (in.shard == egress.shard) {
    if (!admit(from, to, egress_id, ingress_at)) {
      return;
    }
    credit_emitted(packed_route, -1);
    in.shard->schedule_in(latency, deliver);
    return;
  }
  in.shard->post_cross(*egress.shard, ingress_at + latency,
                       [this, from, to, egress_id, ingress_at, packed_route,
                        deliver] {
                         if (!admit(from, to, egress_id, ingress_at)) {
                           return;
                         }
                         credit_emitted(packed_route, -1);
                         deliver();
                       });
}

void GatewayNode::on_rx(BusId from, const can::CanFrame& frame, SimTime at) {
  for (const Route& route : routes_) {
    if (!route.enabled || route.from != from || !route.matches(frame.id)) {
      continue;
    }
    can::CanFrame out = frame;
    if (route.remap) {
      out.id = *route.remap;
    }
    if (!translate_format(route, out)) {
      // Translation drops are charged on the ingress shard (the decision
      // needs no egress queue state).
      ++dir_state(from, route.to).stats.dropped_translation;
      emit_drop(from, route.to, out.id, DropReason::translation, at);
      continue;
    }
    queue_can_egress(from, route.to, out, at, config_.forwarding_latency,
                     -1, -1);
  }
  const unsigned pb = frame.rtr ? 0 : can::payload_bytes(frame);
  for (std::size_t i = 0; i < packed_routes_.size(); ++i) {
    const PackedRoute& route = packed_routes_[i];
    if (route.from != from || frame.rtr) {
      continue;
    }
    PackState& st = pack_state_[i];
    bool touched = false;
    for (const PackSlot& slot : route.table) {
      if (slot.src_id != frame.id) {
        continue;
      }
      touched = true;
      // Latest-value semantics; bytes past the ingress payload read as 0.
      for (unsigned k = 0; k < slot.bytes; ++k) {
        st.buffer[slot.offset + k] = k < pb ? frame.data[k] : 0;
      }
    }
    if (!touched) {
      continue;
    }
    ++st.stats.updates;
    if (frame.id != route.trigger_id) {
      continue;
    }
    const SimTime latency =
        route.latency < 0 ? config_.forwarding_latency : route.latency;
    if (route.egress_dyn >= 0) {
      FlexrayFabric::DynPayload p;
      p.bytes = route.egress_bytes;
      std::copy_n(st.buffer.begin(), p.bytes, p.data.begin());
      p.timestamp = frame.timestamp;
      queue_flexray_egress(from, route.to, route.egress_dyn, std::move(p),
                           at, latency, static_cast<int>(i));
    } else {
      can::CanFrame out;
      out.id = route.egress_id;
      out.extended = route.egress_extended;
      out.rtr = false;
      out.fd = route.egress_fd;
      out.brs = route.egress_brs;
      out.dlc = route.egress_dlc;
      std::copy_n(st.buffer.begin(), can::payload_bytes(out),
                  out.data.begin());
      out.timestamp = frame.timestamp;
      queue_can_egress(from, route.to, out, at, latency,
                       static_cast<int>(i), -1);
    }
  }
  for (std::size_t i = 0; i < unpack_routes_.size(); ++i) {
    const UnpackRoute& route = unpack_routes_[i];
    if (route.from != from || route.match_dyn >= 0 || frame.rtr ||
        frame.id != route.match_id) {
      continue;
    }
    run_unpack(i, route, frame.data.data(), pb, frame.timestamp, at);
  }
}

void GatewayNode::on_flexray_rx(BusId from,
                                const FlexrayFabric::DynFrameInfo& info,
                                const FlexrayFabric::DynPayload& payload,
                                SimTime at) {
  const Port& port = ports_[from];
  for (std::size_t i = 0; i < unpack_routes_.size(); ++i) {
    const UnpackRoute& route = unpack_routes_[i];
    if (route.from != from || route.match_dyn < 0 ||
        port.flexray->dyn_info(route.match_dyn).slot_id != info.slot_id) {
      continue;
    }
    run_unpack(i, route, payload.data.data(), payload.bytes,
               payload.timestamp, at);
  }
}

void GatewayNode::run_unpack(std::size_t route_index,
                             const UnpackRoute& route,
                             const std::uint8_t* payload,
                             unsigned payload_bytes, std::int64_t timestamp,
                             SimTime at) {
  TranslationStats& st = unpack_stats_[route_index];
  ++st.updates;
  const SimTime latency =
      route.latency < 0 ? config_.forwarding_latency : route.latency;
  for (const UnpackSlot& slot : route.table) {
    // A full direction drops this slice inside queue_can_egress; later
    // slices may still fit.
    can::CanFrame out;
    out.id = slot.dst_id;
    out.extended = slot.extended;
    out.rtr = false;
    out.fd = false;
    out.dlc = slot.dlc;
    for (unsigned k = 0; k < slot.dlc; ++k) {
      const unsigned src = slot.offset + k;
      out.data[k] = src < payload_bytes ? payload[src] : 0;
    }
    out.timestamp = timestamp;
    queue_can_egress(route.from, route.to, out, at, latency, -1,
                     static_cast<int>(route_index));
  }
}

void GatewayNode::on_tx_done(BusId to, const can::CanFrame& frame,
                             SimTime at) {
  auto& by_id = in_transit_[to];
  const auto it = by_id.find(frame.id);
  ACES_CHECK_MSG(it != by_id.end() && !it->second.empty(),
                 "gateway '" + name_ + "' completed a frame it never sent");
  const Transit t = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) {
    by_id.erase(it);
  }
  DirectionState& st = dir_state(t.from, to);
  DirectionStats& d = st.stats;
  if (ports_[t.from].shard == ports_[to].shard) {
    ACES_CHECK(d.queued > 0);
    --d.queued;
  } else {
    // Cross-shard: the slot is freed by the admission replay at the next
    // admit whose ingress instant is at or after this completion.
    st.pending_release.push_back(at);
  }
  ++d.delivered;
  const SimTime transit = at - t.ingress_at;
  d.worst_transit = std::max(d.worst_transit, transit);
  if (t.packed_route >= 0) {
    TranslationStats& ts =
        pack_state_[static_cast<std::size_t>(t.packed_route)].stats;
    ts.worst_transit = std::max(ts.worst_transit, transit);
  }
  if (t.unpack_route >= 0) {
    TranslationStats& ts =
        unpack_stats_[static_cast<std::size_t>(t.unpack_route)];
    ts.worst_transit = std::max(ts.worst_transit, transit);
  }
}

void GatewayNode::on_flexray_tx_done(BusId to,
                                     const FlexrayFabric::DynFrameInfo& info,
                                     SimTime at) {
  auto& by_slot = fr_in_transit_[to];
  const auto it = by_slot.find(static_cast<int>(info.slot_id));
  ACES_CHECK_MSG(it != by_slot.end() && !it->second.empty(),
                 "gateway '" + name_ + "' completed a dynamic frame it "
                 "never sent");
  const Transit t = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) {
    by_slot.erase(it);
  }
  DirectionState& st = dir_state(t.from, to);
  DirectionStats& d = st.stats;
  if (ports_[t.from].shard == ports_[to].shard) {
    ACES_CHECK(d.queued > 0);
    --d.queued;
  } else {
    st.pending_release.push_back(at);
  }
  ++d.delivered;
  const SimTime transit = at - t.ingress_at;
  d.worst_transit = std::max(d.worst_transit, transit);
  if (t.packed_route >= 0) {
    TranslationStats& ts =
        pack_state_[static_cast<std::size_t>(t.packed_route)].stats;
    ts.worst_transit = std::max(ts.worst_transit, transit);
  }
}

void GatewayNode::reset_stats() {
  for (auto& [key, st] : directions_) {
    const unsigned queued = st.stats.queued;  // live state, kept (includes
                                              // the unreplayed backlog)
    st.stats = DirectionStats{};
    st.stats.queued = queued;
    // The new window's peak starts at the true in-gateway count.
    st.stats.peak_queued =
        queued - static_cast<unsigned>(st.pending_release.size());
  }
  for (PackState& st : pack_state_) {
    st.stats = TranslationStats{};  // the packing buffer is state, kept
  }
  for (TranslationStats& st : unpack_stats_) {
    st = TranslationStats{};
  }
}

}  // namespace aces::net
