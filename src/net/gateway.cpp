#include "net/gateway.h"

#include <algorithm>

#include "support/check.h"

namespace aces::net {

using sim::SimTime;

GatewayNode::GatewayNode(std::string name, sim::Simulation& sim,
                         GatewayConfig config)
    : name_(std::move(name)), sim_(sim), config_(config) {
  ACES_CHECK_MSG(config_.queue_depth > 0,
                 "gateway queue_depth must be >= 1");
  ACES_CHECK_MSG(config_.forwarding_latency >= 0,
                 "gateway forwarding latency cannot be negative");
}

void GatewayNode::join(BusId id, can::CanBus& bus) {
  ACES_CHECK_MSG(ports_.find(id) == ports_.end(),
                 "gateway '" + name_ + "' already joined this bus");
  Port port;
  port.bus = &bus;
  port.node = bus.attach_node(name_);
  ports_[id] = port;
  bus.subscribe(port.node,
                [this, id](const can::CanFrame& f, SimTime at) {
                  on_rx(id, f, at);
                });
  bus.subscribe_tx(port.node,
                   [this, id](const can::CanFrame& f, SimTime at) {
                     on_tx_done(id, f, at);
                   });
}

void GatewayNode::add_route(const Route& route) {
  ACES_CHECK_MSG(route.from != route.to,
                 "gateway route cannot loop a bus onto itself");
  ACES_CHECK_MSG(ports_.find(route.from) != ports_.end() &&
                     ports_.find(route.to) != ports_.end(),
                 "gateway route references a bus it has not joined");
  routes_.push_back(route);
}

can::NodeId GatewayNode::node_on(BusId bus) const {
  const auto it = ports_.find(bus);
  ACES_CHECK_MSG(it != ports_.end(),
                 "gateway '" + name_ + "' is not on this bus");
  return it->second.node;
}

const GatewayNode::DirectionStats& GatewayNode::direction(BusId from,
                                                          BusId to) const {
  static const DirectionStats kEmpty;
  const auto it = directions_.find({from, to});
  return it == directions_.end() ? kEmpty : it->second;
}

void GatewayNode::on_rx(BusId from, const can::CanFrame& frame, SimTime at) {
  for (const Route& route : routes_) {
    if (route.from != from || !route.matches(frame.id)) {
      continue;
    }
    DirectionStats& d = dir(from, route.to);
    if (d.queued >= config_.queue_depth) {
      // Bounded store-and-forward buffer: overload drops, it never queues
      // unboundedly — and the drop is visible to the analysis story.
      ++d.dropped_overflow;
      ++stats_.frames_dropped;
      continue;
    }
    ++d.queued;
    d.peak_queued = std::max(d.peak_queued, d.queued);
    ++d.forwarded;
    ++stats_.frames_forwarded;
    can::CanFrame out = frame;
    if (route.remap) {
      out.id = *route.remap;
    }
    // After the processing latency the frame enters the egress mailbox and
    // competes in arbitration like locally-originated traffic. The origin
    // timestamp rides along untouched (bus.send only stamps zeros).
    sim_.schedule_in(config_.forwarding_latency,
                     [this, from, to = route.to, out, at] {
                       Transit t;
                       t.from = from;
                       t.ingress_at = at;
                       in_transit_[to][out.id].push_back(t);
                       Port& port = ports_[to];
                       port.bus->send(port.node, out);
                     });
  }
}

void GatewayNode::on_tx_done(BusId to, const can::CanFrame& frame,
                             SimTime at) {
  auto& by_id = in_transit_[to];
  const auto it = by_id.find(frame.id);
  ACES_CHECK_MSG(it != by_id.end() && !it->second.empty(),
                 "gateway '" + name_ + "' completed a frame it never sent");
  const Transit t = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) {
    by_id.erase(it);
  }
  DirectionStats& d = dir(t.from, to);
  ACES_CHECK(d.queued > 0);
  --d.queued;
  ++d.delivered;
  ++stats_.frames_delivered;
  d.worst_transit = std::max(d.worst_transit, at - t.ingress_at);
}

void GatewayNode::reset_stats() {
  for (auto& [key, d] : directions_) {
    const unsigned queued = d.queued;
    d = DirectionStats{};
    d.queued = queued;       // live state: frames still inside the gateway
    d.peak_queued = queued;  // the new window's peak starts here
  }
  stats_ = Stats{};
}

}  // namespace aces::net
