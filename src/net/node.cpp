#include "net/node.h"

#include "support/check.h"

namespace aces::net {

namespace {

// The builder copy an IssEcuNode actually instantiates: the caller's
// machine description plus the network-facing parts EcuNode owns — the CAN
// controller at the peripheral base and the GuestProgram's interrupt
// controller.
[[nodiscard]] cpu::SystemBuilder wire_builder(const cpu::SystemBuilder& b,
                                              can::CanController& controller,
                                              const GuestProgram& program) {
  cpu::SystemBuilder wired = b;
  wired.device(cpu::kPeriphBase, controller).ivc(program.ivc);
  return wired;
}

}  // namespace

IssEcuNode::IssEcuNode(sim::Simulation& sim, can::CanBus& bus, BusId bus_id,
                       const cpu::SystemBuilder& system,
                       const GuestProgram& program,
                       const can::CanController::Config& controller)
    : bus_id_(bus_id),
      controller_(bus, system.name(), controller),
      sys_(wire_builder(system, controller_, program)) {
  // The boot sequence every hand-written example repeated: image, vectors,
  // line enables, co-simulation binding, IRQ delivery, CTRL, reset.
  sys_.load(program.image);
  for (const GuestProgram::Handler& h : program.handlers) {
    sys_.set_irq_handler(h.line, h.address);
    sys_.ivc()->enable_line(h.line, h.priority);
  }
  cpu::SystemBinding& binding = sys_.bind(sim);
  controller_.connect_irq(binding);
  if (program.ctrl != 0) {
    ACES_CHECK(
        sys_.bus()
            .write(cpu::kPeriphBase + can::CanController::kCtrl, 4,
                   program.ctrl, 0)
            .ok());
  }
  sys_.core().reset(program.entry, sys_.initial_sp());
}

std::uint64_t IssEcuNode::worst_irq_latency(unsigned line) {
  std::uint64_t worst = 0;
  for (const std::uint64_t l : sys_.ivc()->latencies(line)) {
    worst = worst > l ? worst : l;
  }
  return worst;
}

ModelEcuNode::ModelEcuNode(sim::Simulation& sim, can::CanBus& bus,
                           BusId bus_id, std::string name,
                           const std::vector<ModelTask>& tasks,
                           sim::SimTime context_switch_cost)
    : name_(std::move(name)),
      bus_id_(bus_id),
      node_(bus.attach_node(name_)),
      kernel_(sim, context_switch_cost) {
  for (const ModelTask& t : tasks) {
    rtos::TaskConfig cfg;
    cfg.name = t.name;
    cfg.priority = t.priority;
    rtos::Segment seg;
    seg.kind = rtos::Segment::Kind::execute;
    seg.duration = t.exec;
    cfg.body.push_back(seg);
    cfg.deadline = t.deadline;
    const rtos::TaskId id = kernel_.create_task(std::move(cfg));
    task_ids_.push_back(id);
    if (t.period > 0) {
      kernel_.set_alarm(id, t.offset, t.period);
    }
    if (t.tx) {
      kernel_.on_complete(id, [&sim, &bus, node = node_, frame = *t.tx] {
        can::CanFrame f = frame;
        f.timestamp = sim.now();
        bus.send(node, f);
      });
    }
    if (t.activate_on_rx) {
      bus.subscribe(node_,
                    [this, id, match = *t.activate_on_rx](
                        const can::CanFrame& f, sim::SimTime) {
                      if (f.id == match) {
                        kernel_.activate(id);
                      }
                    });
    }
  }
  kernel_.start();
}

}  // namespace aces::net
