#include "net/node.h"

#include "support/check.h"

namespace aces::net {

namespace {

// The builder copy an IssEcuNode actually instantiates: the caller's
// machine description plus the network-facing parts EcuNode owns — the CAN
// controller at the peripheral base and the GuestProgram's interrupt
// controller.
[[nodiscard]] cpu::SystemBuilder wire_builder(const cpu::SystemBuilder& b,
                                              can::CanController& controller,
                                              const GuestProgram& program) {
  cpu::SystemBuilder wired = b;
  wired.device(cpu::kPeriphBase, controller).ivc(program.ivc);
  return wired;
}

}  // namespace

// ----- EcuNode fault machinery ------------------------------------------------

void EcuNode::inject(const NodeFault& fault) {
  ACES_CHECK_MSG(fault.at >= sim_.now(), "node fault scheduled in the past");
  switch (fault.kind) {
    case NodeFault::Kind::crash:
      sim_.schedule_at(fault.at, [this] { do_crash(); });
      break;
    case NodeFault::Kind::hang:
      sim_.schedule_at(fault.at, [this] { do_hang(); });
      break;
    case NodeFault::Kind::reset:
      sim_.schedule_at(fault.at, [this, delay = fault.reboot_delay] {
        last_fault_at_ = sim_.now();
        ++fault_stats_.resets;
        restart(delay);
      });
      break;
    case NodeFault::Kind::babble:
      ACES_CHECK_MSG(fault.babble_period > 0,
                     "babble fault needs a positive period");
      sim_.schedule_at(fault.at,
                       [this, frame = fault.babble_frame,
                        period = fault.babble_period] {
                         last_fault_at_ = sim_.now();
                         start_babble(frame, period);
                       });
      break;
  }
}

void EcuNode::do_crash() {
  last_fault_at_ = sim_.now();
  ++fault_stats_.crashes;
  alive_ = false;
  bus_.detach(can_node());  // silent death: gone from arbitration
  halt_compute();
}

void EcuNode::do_hang() {
  last_fault_at_ = sim_.now();
  ++fault_stats_.hangs;
  alive_ = false;
  // Compute freezes but the transceiver stays attached: the node still
  // acknowledges frames and looks healthy at the wire level — only alive
  // supervision can tell.
  halt_compute();
}

void EcuNode::restart(sim::SimTime delay) {
  // A supervisor on another shard restarts this ECU through here;
  // run_on marshals the whole sequence to the ECU's own shard (an
  // immediate call when caller and ECU share one).
  sim::run_on(sim_, [this, delay] { restart_now(delay); });
}

void EcuNode::restart_now(sim::SimTime delay) {
  if (reboot_pending_) {
    return;
  }
  reboot_pending_ = true;
  alive_ = false;
  stop_babble();
  bus_.detach(can_node());
  halt_compute();
  sim_.schedule_in(delay, [this] {
    reboot_pending_ = false;
    bus_.attach(can_node());
    boot_compute();
    alive_ = true;
    last_boot_at_ = sim_.now();
    ++fault_stats_.reboots;
  });
}

void EcuNode::stop_babble() {
  babbling_ = false;
  ++babble_epoch_;
}

void EcuNode::start_babble(const can::CanFrame& frame, sim::SimTime period) {
  babbling_ = true;
  babble_tick(frame, period, ++babble_epoch_);
}

void EcuNode::babble_tick(const can::CanFrame& frame, sim::SimTime period,
                          std::uint64_t epoch) {
  if (!babbling_ || epoch != babble_epoch_) {
    return;
  }
  can::CanFrame f = frame;
  f.timestamp = sim_.now();
  bus_.send(can_node(), f);
  ++fault_stats_.babble_frames;
  sim_.schedule_in(period, [this, frame, period, epoch] {
    babble_tick(frame, period, epoch);
  });
}

void EcuNode::start_heartbeat(const can::CanFrame& frame,
                              sim::SimTime period) {
  ACES_CHECK_MSG(period > 0, "heartbeat needs a positive period");
  sim_.schedule_every(period, [this, frame] {
    if (!alive_) {
      return;  // dead ECUs do not heartbeat — that is the whole point
    }
    can::CanFrame f = frame;
    f.timestamp = sim_.now();
    bus_.send(can_node(), f);
    ++fault_stats_.heartbeats;
  });
}

// ----- IssEcuNode -------------------------------------------------------------

IssEcuNode::IssEcuNode(sim::Simulation& sim, can::CanBus& bus, BusId bus_id,
                       const cpu::SystemBuilder& system,
                       const GuestProgram& program,
                       const can::CanController::Config& controller)
    : EcuNode(sim, bus, bus_id),
      controller_(bus, system.name(), controller),
      sys_(wire_builder(system, controller_, program)),
      program_(program) {
  // One-time co-simulation wiring, then the (repeatable) boot sequence.
  cpu::SystemBinding& binding = sys_.bind(sim);
  controller_.connect_irq(binding);
  boot_guest();
}

void IssEcuNode::boot_guest() {
  // The boot sequence every hand-written example repeated: image, vectors,
  // line enables, CTRL, reset. Re-run on reboot because System::load
  // restores the image over the patched vector table.
  sys_.load(program_.image);
  for (const GuestProgram::Handler& h : program_.handlers) {
    sys_.set_irq_handler(h.line, h.address);
    sys_.ivc()->enable_line(h.line, h.priority);
  }
  if (program_.ctrl != 0) {
    ACES_CHECK(
        sys_.bus()
            .write(cpu::kPeriphBase + can::CanController::kCtrl, 4,
                   program_.ctrl, 0)
            .ok());
  }
  sys_.core().reset(program_.entry, sys_.initial_sp());
}

void IssEcuNode::halt_compute() { binding().set_frozen(true); }

void IssEcuNode::boot_compute() {
  binding().set_frozen(false);
  boot_guest();
}

std::uint64_t IssEcuNode::worst_irq_latency(unsigned line) {
  std::uint64_t worst = 0;
  for (const std::uint64_t l : sys_.ivc()->latencies(line)) {
    worst = worst > l ? worst : l;
  }
  return worst;
}

ModelEcuNode::ModelEcuNode(sim::Simulation& sim, can::CanBus& bus,
                           BusId bus_id, std::string name,
                           const std::vector<ModelTask>& tasks,
                           sim::SimTime context_switch_cost)
    : EcuNode(sim, bus, bus_id),
      name_(std::move(name)),
      node_(bus.attach_node(name_)),
      kernel_(sim, context_switch_cost) {
  for (const ModelTask& t : tasks) {
    rtos::TaskConfig cfg;
    cfg.name = t.name;
    cfg.priority = t.priority;
    rtos::Segment seg;
    seg.kind = rtos::Segment::Kind::execute;
    seg.duration = t.exec;
    cfg.body.push_back(seg);
    cfg.deadline = t.deadline;
    const rtos::TaskId id = kernel_.create_task(std::move(cfg));
    task_ids_.push_back(id);
    if (t.period > 0) {
      kernel_.set_alarm(id, t.offset, t.period);
    }
    if (t.tx) {
      kernel_.on_complete(id, [&sim, &bus, node = node_, frame = *t.tx] {
        can::CanFrame f = frame;
        f.timestamp = sim.now();
        bus.send(node, f);
      });
    }
    if (t.activate_on_rx) {
      bus.subscribe(node_,
                    [this, id, match = *t.activate_on_rx](
                        const can::CanFrame& f, sim::SimTime) {
                      if (f.id == match) {
                        kernel_.activate(id);
                      }
                    });
    }
  }
  kernel_.start();
}

}  // namespace aces::net
