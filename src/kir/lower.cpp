#include "kir/lower.h"

#include <algorithm>
#include <bit>
#include <optional>

#include "isa/codec.h"
#include "kir/regalloc.h"
#include "support/bits.h"
#include "support/check.h"

namespace aces::kir {

using isa::Assembler;
using isa::Cond;
using isa::Encoding;
using isa::Instruction;
using isa::Label;
using isa::Op;
using isa::Reg;
using isa::SetFlags;

namespace {

// ----- legalization -----------------------------------------------------------

// Rewrites KIR constructs the target cannot express natively into primitive
// KIR, introducing fresh vregs so that register pressure is visible to the
// allocator (this is where the narrow encoding starts paying).
class Legalizer {
 public:
  Legalizer(const KFunction& in, const LoweringOptions& opts)
      : in_(in), opts_(opts), out_(in.name(), in.params()) {
    // Mirror the vreg space: fresh vregs continue after the input's.
    for (int k = in.params(); k < in.num_vregs(); ++k) {
      (void)out_.v();
    }
    for (int k = 0; k < in.num_labels(); ++k) {
      (void)out_.make_label();
    }
  }

  KFunction run() {
    for (const KInsn& i : in_.body()) {
      rewrite(i);
    }
    return std::move(out_);
  }

 private:
  void rewrite(const KInsn& i) {
    switch (i.op) {
      case KOp::bfx_u:
      case KOp::bfx_s:
        if (!opts_.use_bitfield) {
          legalize_bfx(i);
          return;
        }
        break;
      case KOp::bfi:
        if (!opts_.use_bitfield) {
          legalize_bfi(i);
          return;
        }
        break;
      case KOp::bit_rev:
        if (!opts_.use_bitfield) {
          legalize_bit_rev(i);
          return;
        }
        break;
      case KOp::byte_rev:
        if (!opts_.use_bitfield) {
          legalize_byte_rev(i);
          return;
        }
        break;
      case KOp::clz:
        if (!opts_.use_bitfield) {
          legalize_clz(i);
          return;
        }
        break;
      case KOp::ext_s8:
      case KOp::ext_s16:
      case KOp::ext_u8:
      case KOp::ext_u16:
        if (!opts_.use_bitfield) {
          legalize_ext(i);
          return;
        }
        break;
      default:
        break;
    }
    out_.append(i);
  }

  void legalize_bfx(const KInsn& i) {
    const unsigned up = 32u - i.lsb - i.bf_width;
    const unsigned down = 32u - i.bf_width;
    const KOp shr = i.op == KOp::bfx_s ? KOp::shr_s : KOp::shr_u;
    VReg t = i.a;
    if (up > 0) {
      const VReg fresh = out_.v();
      out_.arith_imm(KOp::shl, fresh, i.a, up);
      t = fresh;
    }
    if (down > 0) {
      out_.arith_imm(shr, i.dst, t, down);
    } else {
      out_.mov(i.dst, t);
    }
  }

  void legalize_bfi(const KInsn& i) {
    // dst = (dst & ~(mask << lsb)) | ((a & mask) << lsb)
    const std::uint32_t mask =
        i.bf_width >= 32 ? 0xFFFF'FFFFu : ((1u << i.bf_width) - 1u);
    const VReg vm = out_.v();
    out_.movi(vm, mask);
    const VReg vt = out_.v();
    out_.arith(KOp::and_, vt, i.a, vm);
    if (i.lsb > 0) {
      out_.arith_imm(KOp::shl, vt, vt, i.lsb);
      out_.arith_imm(KOp::shl, vm, vm, i.lsb);
    }
    out_.arith(KOp::bic, i.dst, i.dst, vm);
    out_.arith(KOp::orr, i.dst, i.dst, vt);
  }

  void legalize_byte_rev(const KInsn& i) {
    // r = (x<<24) | (x>>24) | ((x & 0xFF0000) >> 8) | ((x & 0xFF00) << 8)
    const VReg hi = out_.v(), lo = out_.v(), m1 = out_.v(), m2 = out_.v();
    out_.arith_imm(KOp::shl, hi, i.a, 24);
    out_.arith_imm(KOp::shr_u, lo, i.a, 24);
    out_.arith(KOp::orr, hi, hi, lo);
    const VReg mask = out_.v();
    out_.movi(mask, 0x00FF0000);
    out_.arith(KOp::and_, m1, i.a, mask);
    out_.arith_imm(KOp::shr_u, m1, m1, 8);
    out_.movi(mask, 0x0000FF00);
    out_.arith(KOp::and_, m2, i.a, mask);
    out_.arith_imm(KOp::shl, m2, m2, 8);
    out_.arith(KOp::orr, m1, m1, m2);
    out_.arith(KOp::orr, i.dst, hi, m1);
  }

  void legalize_bit_rev(const KInsn& i) {
    // Swap odd/even bits, pairs, nibbles, then reverse bytes.
    const VReg x = out_.v();
    out_.mov(x, i.a);
    const VReg mask = out_.v(), t1 = out_.v(), t2 = out_.v();
    struct Step {
      std::uint32_t m;
      unsigned s;
    };
    for (const Step step : {Step{0x5555'5555u, 1}, Step{0x3333'3333u, 2},
                            Step{0x0F0F'0F0Fu, 4}}) {
      out_.movi(mask, step.m);
      out_.arith_imm(KOp::shr_u, t1, x, step.s);
      out_.arith(KOp::and_, t1, t1, mask);
      out_.arith(KOp::and_, t2, x, mask);
      out_.arith_imm(KOp::shl, t2, t2, step.s);
      out_.arith(KOp::orr, x, t1, t2);
    }
    KInsn rev;
    rev.op = KOp::byte_rev;
    rev.dst = i.dst;
    rev.a = x;
    rewrite(rev);  // byte_rev legalizes further if needed
  }

  void legalize_clz(const KInsn& i) {
    // Branchless binary count using select (predication-friendly).
    const VReg y = out_.v(), n = out_.v();
    out_.mov(y, i.a);
    out_.movi(n, 0);
    for (const unsigned k : {16u, 8u, 4u, 2u, 1u}) {
      const VReg top = out_.v();
      out_.arith_imm(KOp::shr_u, top, y, 32 - k);
      const VReg shifted = out_.v();
      out_.arith_imm(KOp::shl, shifted, y, k);
      const VReg bumped = out_.v();
      out_.arith_imm(KOp::add, bumped, n, k);
      // if (top == 0) { y <<= k; n += k; }
      out_.select_imm(y, Cond::eq, top, 0, shifted, y);
      out_.select_imm(n, Cond::eq, top, 0, bumped, n);
    }
    // All-zero input: the loop accumulates 31 and y stays 0 -> add 1 more.
    const VReg msb = out_.v();
    out_.arith_imm(KOp::shr_u, msb, y, 31);
    const VReg plus1 = out_.v();
    out_.arith_imm(KOp::add, plus1, n, 1);
    out_.select_imm(i.dst, Cond::eq, msb, 0, plus1, n);
  }

  void legalize_ext(const KInsn& i) {
    const unsigned shift = (i.op == KOp::ext_s8 || i.op == KOp::ext_u8)
                               ? 24
                               : 16;
    const bool sign = i.op == KOp::ext_s8 || i.op == KOp::ext_s16;
    const VReg t = out_.v();
    out_.arith_imm(KOp::shl, t, i.a, shift);
    out_.arith_imm(sign ? KOp::shr_s : KOp::shr_u, i.dst, t, shift);
  }

  const KFunction& in_;
  const LoweringOptions& opts_;
  KFunction out_;
};

// ----- per-function lowering -----------------------------------------------------

struct HelperLabels {
  Label udiv = -1;
  Label sdiv = -1;
  bool udiv_used = false;
  bool sdiv_used = false;
};

class FunctionLowerer {
 public:
  FunctionLowerer(const KFunction& f, Encoding enc,
                  const LoweringOptions& opts, Assembler& as,
                  HelperLabels& helpers)
      : f_(f),
        enc_(enc),
        opts_(opts),
        as_(as),
        helpers_(helpers),
        codec_(isa::codec_for(enc)) {
    if (enc == Encoding::n16) {
      allocatable_ = {isa::r0, isa::r1, isa::r2, isa::r3, isa::r4, isa::r5};
      callee_mask_ = {false, false, false, false, true, true};
      scratch_ = {isa::r6, isa::r7};
    } else {
      allocatable_ = {isa::r0, isa::r1, isa::r2, isa::r3, isa::r4, isa::r5,
                      isa::r6, isa::r7, isa::r8, isa::r9, isa::r10};
      callee_mask_ = {false, false, false, false, true, true,
                      true,  true,  true,  true,  true};
      scratch_ = {isa::r11, isa::r12};
    }
    // Call sites clobber r0-r3.
    for (int p = 0; p < static_cast<int>(f.body().size()); ++p) {
      const KOp op = f.body()[static_cast<std::size_t>(p)].op;
      if ((op == KOp::sdiv || op == KOp::udiv) && !opts_.use_hw_divide) {
        call_positions_.push_back(p);
      }
    }
    alloc_ = allocate_registers(f, allocatable_, callee_mask_,
                                call_positions_);
    needs_lr_ = !call_positions_.empty();
    for (int k = 0; k < f.num_labels(); ++k) {
      labels_.push_back(as_.new_label());
    }
  }

  void emit() {
    emit_prologue();
    int since_island = 0;
    for (const KInsn& i : f_.body()) {
      emit_insn(i);
      // Long functions would push literals beyond the narrow pc-relative
      // load range; drop a pool island (branch-over-pool) periodically.
      if (++since_island >= 48) {
        as_.pool_island();
        since_island = 0;
      }
    }
  }

 private:
  // ----- register plumbing -----

  [[nodiscard]] bool encodable(const Instruction& i) const {
    return codec_.size_for(i, 0) != 0;
  }

  [[nodiscard]] std::uint32_t slot_offset(VReg v) const {
    return 4u * static_cast<std::uint32_t>(
                    alloc_.slot[static_cast<std::size_t>(v)]);
  }

  // Returns a register holding vreg's value (reloading into scratch[idx]
  // when spilled).
  Reg use(VReg v, int scratch_idx) {
    ACES_CHECK(v >= 0);
    if (!alloc_.spilled(v)) {
      return alloc_.reg_of(v);
    }
    const Reg s = scratch_[static_cast<std::size_t>(scratch_idx)];
    emit_load_raw(s, isa::sp, slot_offset(v));
    return s;
  }

  // Register a def should be computed into.
  Reg def_reg(VReg v, int scratch_idx) {
    ACES_CHECK(v >= 0);
    if (!alloc_.spilled(v)) {
      return alloc_.reg_of(v);
    }
    return scratch_[static_cast<std::size_t>(scratch_idx)];
  }

  void finish_def(VReg v, Reg computed_in) {
    if (alloc_.spilled(v)) {
      emit_store_raw(computed_in, isa::sp, slot_offset(v));
    }
  }

  // ----- raw emission helpers (always encodable) -----

  void emit_mov(Reg rd, Reg rs) {
    if (rd != rs) {
      as_.ins(isa::ins_mov_reg(rd, rs, SetFlags::any));
    }
  }

  void emit_load_raw(Reg rd, Reg base, std::uint32_t offset) {
    const Instruction i = isa::ins_ldst_imm(Op::ldr, rd, base,
                                            static_cast<std::int64_t>(offset));
    ACES_CHECK_MSG(encodable(i), "spill frame exceeds addressing range");
    as_.ins(i);
  }

  void emit_store_raw(Reg rs, Reg base, std::uint32_t offset) {
    const Instruction i = isa::ins_ldst_imm(Op::str, rs, base,
                                            static_cast<std::int64_t>(offset));
    ACES_CHECK_MSG(encodable(i), "spill frame exceeds addressing range");
    as_.ins(i);
  }

  // Builds an arbitrary 32-bit constant into rd using the densest idiom the
  // target offers — the heart of the §2.2 comparison.
  void materialize(Reg rd, std::int64_t imm) {
    const auto v = static_cast<std::uint32_t>(imm);
    Instruction movi = isa::ins_mov_imm(rd, v, SetFlags::any);
    if (encodable(movi)) {
      as_.ins(movi);
      return;
    }
    Instruction mvni;
    mvni.op = Op::mvn;
    mvni.rd = rd;
    mvni.uses_imm = true;
    mvni.imm = static_cast<std::int64_t>(~v);
    mvni.set_flags = SetFlags::any;
    if (encodable(mvni)) {
      as_.ins(mvni);
      return;
    }
    if (enc_ == Encoding::n16) {
      // imm8 shifted left: two narrow instructions, no pool.
      const unsigned tz = v == 0 ? 0 : static_cast<unsigned>(
                                           std::countr_zero(v));
      if (tz > 0 && (v >> tz) <= 0xFF) {
        as_.ins(isa::ins_mov_imm(rd, v >> tz, SetFlags::any));
        as_.ins(isa::ins_rri(Op::lsl, rd, rd, tz, SetFlags::any));
        return;
      }
    }
    if (opts_.use_movw_movt) {
      Instruction movw;
      movw.op = Op::movw;
      movw.rd = rd;
      movw.uses_imm = true;
      movw.imm = v & 0xFFFFu;
      as_.ins(movw);
      if ((v >> 16) != 0) {
        Instruction movt = movw;
        movt.op = Op::movt;
        movt.imm = v >> 16;
        as_.ins(movt);
      }
      return;
    }
    as_.load_literal(rd, v);  // literal pool — the flash-stream breaker
  }

  // ----- generic binary op with encodability fixups -----

  [[nodiscard]] static bool commutative(Op op) {
    switch (op) {
      case Op::add:
      case Op::adc:
      case Op::and_:
      case Op::orr:
      case Op::eor:
      case Op::mul:
        return true;
      default:
        return false;
    }
  }

  // rd = rn OP (rm | imm). imm_scratch selects the scratch used if the
  // immediate needs materializing (must not collide with live scratches).
  void emit_binop_imm(Op op, Reg rd, Reg rn, std::int64_t imm,
                      int imm_scratch) {
    // Shift-by-zero degenerates to mov.
    if ((op == Op::lsl || op == Op::lsr || op == Op::asr || op == Op::ror) &&
        imm == 0) {
      emit_mov(rd, rn);
      return;
    }
    Instruction direct = isa::ins_rri(op, rd, rn, imm, SetFlags::any);
    if (imm >= 0 && encodable(direct)) {
      as_.ins(direct);
      return;
    }
    // add/sub of a negative immediate: flip the operation.
    if ((op == Op::add || op == Op::sub) && imm < 0) {
      const Op flipped = op == Op::add ? Op::sub : Op::add;
      Instruction alt = isa::ins_rri(flipped, rd, rn, -imm, SetFlags::any);
      if (encodable(alt)) {
        as_.ins(alt);
        return;
      }
    }
    // N16 two-address immediate form (rd == rn, imm8).
    if (rd != rn) {
      Instruction two = isa::ins_rri(op, rd, rd, imm, SetFlags::any);
      if (imm >= 0 && encodable(two) && rd != rn) {
        emit_mov(rd, rn);
        as_.ins(two);
        return;
      }
    }
    // Materialize and fall back to the register form.
    const Reg s = scratch_[static_cast<std::size_t>(imm_scratch)];
    ACES_CHECK_MSG(s != rn && s != rd,
                   "scratch collision while materializing immediate");
    materialize(s, imm);
    emit_binop_reg(op, rd, rn, s);
  }

  void emit_binop_reg(Op op, Reg rd, Reg rn, Reg rm) {
    // Reverse-subtract with two registers is plain subtraction with the
    // operands swapped (N16 has no rsb register form at all).
    if (op == Op::rsb) {
      emit_binop_reg(Op::sub, rd, rm, rn);
      return;
    }
    Instruction direct = isa::ins_rrr(op, rd, rn, rm, SetFlags::any);
    if (encodable(direct)) {
      as_.ins(direct);
      return;
    }
    // Two-address fixups (the N16 tax).
    Reg a = rn, b = rm;
    if (rd == b && commutative(op)) {
      std::swap(a, b);
    }
    if (rd == b) {
      // Non-commutative with rd aliasing the second operand: stash it.
      const Reg s = scratch_[0] != rd && scratch_[0] != a ? scratch_[0]
                                                          : scratch_[1];
      emit_mov(s, b);
      emit_mov(rd, a);
      Instruction fixed = isa::ins_rrr(op, rd, rd, s, SetFlags::any);
      ACES_CHECK_MSG(encodable(fixed), "two-address fixup failed");
      as_.ins(fixed);
      return;
    }
    emit_mov(rd, a);
    Instruction fixed = isa::ins_rrr(op, rd, rd, b, SetFlags::any);
    ACES_CHECK_MSG(encodable(fixed), "two-address fixup failed");
    as_.ins(fixed);
  }

  // ----- compare (shared by brcc/select) -----

  void emit_compare(Reg a, bool b_is_imm, Reg b, std::int64_t imm) {
    if (b_is_imm) {
      Instruction ci = isa::ins_cmp_imm(a, imm);
      if (imm >= 0 && encodable(ci)) {
        as_.ins(ci);
        return;
      }
      const Reg s = scratch_[1] != a ? scratch_[1] : scratch_[0];
      materialize(s, imm);
      as_.ins(isa::ins_cmp_reg(a, s));
      return;
    }
    as_.ins(isa::ins_cmp_reg(a, b));
  }

  // ----- memory -----

  [[nodiscard]] static Op load_op(Width w, bool sign) {
    switch (w) {
      case Width::w8: return sign ? Op::ldrsb : Op::ldrb;
      case Width::w16: return sign ? Op::ldrsh : Op::ldrh;
      case Width::w32: return Op::ldr;
    }
    return Op::ldr;
  }
  [[nodiscard]] static Op store_op(Width w) {
    switch (w) {
      case Width::w8: return Op::strb;
      case Width::w16: return Op::strh;
      case Width::w32: return Op::str;
    }
    return Op::str;
  }

  void emit_load(Reg rd, Reg base, std::int64_t offset, Width w, bool sign) {
    const Op op = load_op(w, sign);
    Instruction direct = isa::ins_ldst_imm(op, rd, base, offset);
    if (offset >= 0 && encodable(direct)) {
      as_.ins(direct);
      return;
    }
    // Register-offset fallback (also covers N16's missing signed-load
    // immediate forms).
    const Reg s = scratch_[1] != base && scratch_[1] != rd ? scratch_[1]
                                                           : scratch_[0];
    materialize(s, offset);
    Instruction reg_form = isa::ins_ldst_reg(op, rd, base, s);
    ACES_CHECK_MSG(encodable(reg_form), "load lowering failed");
    as_.ins(reg_form);
  }

  void emit_store(Reg rs, Reg base, std::int64_t offset, Width w) {
    const Op op = store_op(w);
    Instruction direct = isa::ins_ldst_imm(op, rs, base, offset);
    if (offset >= 0 && encodable(direct)) {
      as_.ins(direct);
      return;
    }
    const Reg s = scratch_[1] != base && scratch_[1] != rs ? scratch_[1]
                                                           : scratch_[0];
    ACES_CHECK_MSG(s != base && s != rs, "store scratch collision");
    materialize(s, offset);
    Instruction reg_form = isa::ins_ldst_reg(op, rs, base, s);
    ACES_CHECK_MSG(encodable(reg_form), "store lowering failed");
    as_.ins(reg_form);
  }

  // ----- prologue / epilogue -----

  [[nodiscard]] std::uint16_t saved_mask() const {
    std::uint16_t mask = 0;
    for (const Reg r : alloc_.used_callee_saved) {
      mask |= static_cast<std::uint16_t>(1u << r);
    }
    if (needs_lr_) {
      mask |= static_cast<std::uint16_t>(1u << isa::lr);
    }
    return mask;
  }

  void emit_prologue() {
    const std::uint16_t mask = saved_mask();
    if (mask != 0) {
      as_.ins(isa::ins_push(mask));
    }
    if (alloc_.num_slots > 0) {
      emit_binop_imm(Op::sub, isa::sp, isa::sp, 4 * alloc_.num_slots, 0);
    }
    // Place parameters: spilled ones to their slots, renamed ones via a
    // conflict-free move sequence.
    struct Move {
      Reg dst;
      Reg src;
    };
    std::vector<Move> moves;
    for (VReg p = 0; p < f_.params(); ++p) {
      const Reg arrives = static_cast<Reg>(p);
      if (alloc_.spilled(p)) {
        emit_store_raw(arrives, isa::sp, slot_offset(p));
      } else if (alloc_.reg_of(p) != arrives) {
        moves.push_back(Move{alloc_.reg_of(p), arrives});
      }
    }
    while (!moves.empty()) {
      bool progressed = false;
      for (std::size_t k = 0; k < moves.size(); ++k) {
        const bool dst_is_source = std::any_of(
            moves.begin(), moves.end(),
            [&](const Move& m) { return m.src == moves[k].dst; });
        if (!dst_is_source) {
          emit_mov(moves[k].dst, moves[k].src);
          moves.erase(moves.begin() + static_cast<std::ptrdiff_t>(k));
          progressed = true;
          break;
        }
      }
      if (!progressed) {
        // Cycle: rotate through a scratch.
        emit_mov(scratch_[0], moves[0].src);
        moves[0].src = scratch_[0];
      }
    }
  }

  void emit_epilogue() {
    if (alloc_.num_slots > 0) {
      emit_binop_imm(Op::add, isa::sp, isa::sp, 4 * alloc_.num_slots, 0);
    }
    std::uint16_t mask = saved_mask();
    if (mask & (1u << isa::lr)) {
      mask = static_cast<std::uint16_t>(mask & ~(1u << isa::lr));
      mask |= static_cast<std::uint16_t>(1u << isa::pc);
      as_.ins(isa::ins_pop(mask));
      return;
    }
    if (mask != 0) {
      as_.ins(isa::ins_pop(mask));
    }
    as_.ins(isa::ins_ret());
  }

  // ----- call marshaling (software divide) -----

  void emit_div_call(const KInsn& i, bool is_signed) {
    const Reg ra = use(i.a, 0);
    const Reg rb = i.b_is_imm ? scratch_[1] : use(i.b, 1);
    if (i.b_is_imm) {
      materialize(scratch_[1], i.imm);
    }
    // Parallel move {r0 <- ra, r1 <- rb}.
    if (rb == isa::r0 && ra == isa::r1) {
      emit_mov(scratch_[0], isa::r0);
      emit_mov(isa::r0, isa::r1);
      emit_mov(isa::r1, scratch_[0]);
    } else if (rb == isa::r0) {
      emit_mov(isa::r1, rb);
      emit_mov(isa::r0, ra);
    } else {
      emit_mov(isa::r0, ra);
      emit_mov(isa::r1, rb);
    }
    if (is_signed) {
      helpers_.sdiv_used = true;
      as_.bl(helpers_.sdiv);
    } else {
      helpers_.udiv_used = true;
      as_.bl(helpers_.udiv);
    }
    const Reg rd = def_reg(i.dst, 0);
    emit_mov(rd, isa::r0);
    finish_def(i.dst, rd);
  }

  // ----- select -----

  void emit_select(const KInsn& i) {
    const Reg a = use(i.a, 0);
    emit_compare(a, i.b_is_imm, i.b_is_imm ? 0 : use(i.b, 1), i.imm);
    const Reg rt = use(i.t, 0);
    const Reg rf = use(i.c, 1);
    const Reg rd = def_reg(i.dst, 0);
    // Note: rd may alias rt (both scratch_[0]) — the move orders below keep
    // that correct because only one of the two movs executes.
    if (enc_ == Encoding::w32) {
      Instruction mt = isa::ins_mov_reg(rd, rt, SetFlags::no);
      mt.cond = i.cond;
      as_.ins(mt);
      Instruction mf = isa::ins_mov_reg(rd, rf, SetFlags::no);
      mf.cond = isa::invert(i.cond);
      as_.ins(mf);
    } else if (opts_.use_it_blocks) {
      as_.ins(isa::ins_it(i.cond, "e"));
      as_.ins(isa::ins_mov_reg(rd, rt, SetFlags::no));
      as_.ins(isa::ins_mov_reg(rd, rf, SetFlags::no));
    } else if (rd != rt) {
      // Dense branch form: write the false value, conditionally skip the
      // true write (3 instructions).
      const Label done = as_.new_label();
      emit_mov(rd, rf);
      as_.b(done, isa::invert(i.cond));
      emit_mov(rd, rt);
      as_.bind(done);
    } else {
      // rd aliases rt (spill scratches): classic diamond.
      const Label take_t = as_.new_label();
      const Label done = as_.new_label();
      as_.b(take_t, i.cond);
      emit_mov(rd, rf);
      as_.b(done);
      as_.bind(take_t);
      emit_mov(rd, rt);
      as_.bind(done);
    }
    finish_def(i.dst, rd);
  }

  // ----- instruction dispatch -----

  void emit_insn(const KInsn& i) {
    switch (i.op) {
      case KOp::label:
        as_.bind(labels_[static_cast<std::size_t>(i.target)]);
        return;
      case KOp::br:
        as_.b(labels_[static_cast<std::size_t>(i.target)]);
        return;
      case KOp::brcc: {
        const Reg a = use(i.a, 0);
        // cbz/cbnz: compare-with-zero fused branch (B32 16-bit form).
        if (opts_.use_cbz && i.b_is_imm && i.imm == 0 &&
            (i.cond == Cond::eq || i.cond == Cond::ne) && a < 8) {
          Instruction cb;
          cb.op = i.cond == Cond::eq ? Op::cbz : Op::cbnz;
          cb.rn = a;
          as_.branch(cb, labels_[static_cast<std::size_t>(i.target)]);
          return;
        }
        emit_compare(a, i.b_is_imm, i.b_is_imm ? 0 : use(i.b, 1), i.imm);
        as_.b(labels_[static_cast<std::size_t>(i.target)], i.cond);
        return;
      }
      case KOp::ret: {
        const Reg a = use(i.a, 0);
        emit_mov(isa::r0, a);
        emit_epilogue();
        return;
      }
      case KOp::mov: {
        const Reg src = use(i.a, 0);
        const Reg rd = def_reg(i.dst, 0);
        emit_mov(rd, src);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::movi: {
        const Reg rd = def_reg(i.dst, 0);
        materialize(rd, i.imm);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::select:
        emit_select(i);
        return;
      case KOp::sdiv:
      case KOp::udiv:
        if (!opts_.use_hw_divide) {
          emit_div_call(i, i.op == KOp::sdiv);
          return;
        }
        [[fallthrough]];
      case KOp::add:
      case KOp::sub:
      case KOp::rsb:
      case KOp::mul:
      case KOp::and_:
      case KOp::orr:
      case KOp::eor:
      case KOp::bic:
      case KOp::shl:
      case KOp::shr_u:
      case KOp::shr_s:
      case KOp::ror: {
        static_assert(true);
        const Op op = [&] {
          switch (i.op) {
            case KOp::add: return Op::add;
            case KOp::sub: return Op::sub;
            case KOp::rsb: return Op::rsb;
            case KOp::mul: return Op::mul;
            case KOp::sdiv: return Op::sdiv;
            case KOp::udiv: return Op::udiv;
            case KOp::and_: return Op::and_;
            case KOp::orr: return Op::orr;
            case KOp::eor: return Op::eor;
            case KOp::bic: return Op::bic;
            case KOp::shl: return Op::lsl;
            case KOp::shr_u: return Op::lsr;
            case KOp::shr_s: return Op::asr;
            default: return Op::ror;
          }
        }();
        const Reg a = use(i.a, 0);
        const Reg rd = def_reg(i.dst, 0);
        if (i.b_is_imm) {
          emit_binop_imm(op, rd, a, i.imm, 1);
        } else {
          emit_binop_reg(op, rd, a, use(i.b, 1));
        }
        finish_def(i.dst, rd);
        return;
      }
      case KOp::mla: {
        const Reg a = use(i.a, 0);
        const Reg b = use(i.b, 1);
        const Reg rd = def_reg(i.dst, 0);
        Instruction native = isa::ins_rrr(Op::mla, rd, a, b);
        native.ra = alloc_.spilled(i.c) ? scratch_[1] : alloc_.reg_of(i.c);
        // Reload of acc may not collide with b's scratch.
        if (alloc_.spilled(i.c) && alloc_.spilled(i.b)) {
          native.ra = isa::kNoReg;  // force the fallback below
        }
        if (native.ra != isa::kNoReg) {
          if (alloc_.spilled(i.c)) {
            emit_load_raw(scratch_[1], isa::sp, slot_offset(i.c));
          }
          if (encodable(native)) {
            as_.ins(native);
            finish_def(i.dst, rd);
            return;
          }
        }
        // Fallback: mul into scratch, then add.
        emit_binop_reg(Op::mul, scratch_[0], a, b);
        const Reg acc = use(i.c, 1);
        emit_binop_reg(Op::add, rd, scratch_[0], acc);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::loadi: {
        const Reg base = use(i.a, 0);
        const Reg rd = def_reg(i.dst, 0);
        emit_load(rd, base, i.imm, i.width, i.load_signed);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::loadx: {
        const Reg base = use(i.a, 0);
        const Reg idx = use(i.b, 1);
        const Reg rd = def_reg(i.dst, 0);
        Instruction reg_form =
            isa::ins_ldst_reg(load_op(i.width, i.load_signed), rd, base, idx);
        ACES_CHECK_MSG(encodable(reg_form), "loadx lowering failed");
        as_.ins(reg_form);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::storei: {
        const Reg base = use(i.a, 0);
        const Reg src = use(i.c, 1);
        emit_store(src, base, i.imm, i.width);
        return;
      }
      case KOp::storex: {
        const Reg base = use(i.a, 0);
        const Reg idx = use(i.b, 1);
        // Both scratches may be taken; the source must reload into a
        // register distinct from base/idx.
        Reg src;
        if (!alloc_.spilled(i.c)) {
          src = alloc_.reg_of(i.c);
        } else {
          ACES_CHECK_MSG(!(alloc_.spilled(i.a) && alloc_.spilled(i.b)),
                         "storex with three spilled operands unsupported");
          src = alloc_.spilled(i.a) ? scratch_[1] : scratch_[0];
          emit_load_raw(src, isa::sp, slot_offset(i.c));
        }
        Instruction reg_form =
            isa::ins_ldst_reg(store_op(i.width), src, base, idx);
        ACES_CHECK_MSG(encodable(reg_form), "storex lowering failed");
        as_.ins(reg_form);
        return;
      }
      case KOp::bfx_u:
      case KOp::bfx_s: {
        const Reg a = use(i.a, 0);
        const Reg rd = def_reg(i.dst, 0);
        Instruction x = isa::ins_rrr(
            i.op == KOp::bfx_u ? Op::ubfx : Op::sbfx, rd, a, 0);
        x.imm = i.lsb;
        x.width = i.bf_width;
        ACES_CHECK_MSG(encodable(x), "bfx must be legalized first");
        as_.ins(x);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::bfi: {
        // dst is read-modify-write.
        const Reg rd = use(i.dst, 0);
        const Reg a = use(i.a, 1);
        Instruction x = isa::ins_rrr(Op::bfi, rd, a, 0);
        x.imm = i.lsb;
        x.width = i.bf_width;
        ACES_CHECK_MSG(encodable(x), "bfi must be legalized first");
        as_.ins(x);
        finish_def(i.dst, rd);
        return;
      }
      case KOp::bit_rev:
      case KOp::byte_rev:
      case KOp::clz:
      case KOp::ext_s8:
      case KOp::ext_s16:
      case KOp::ext_u8:
      case KOp::ext_u16: {
        const Op op = [&] {
          switch (i.op) {
            case KOp::bit_rev: return Op::rbit;
            case KOp::byte_rev: return Op::rev;
            case KOp::clz: return Op::clz;
            case KOp::ext_s8: return Op::sxtb;
            case KOp::ext_s16: return Op::sxth;
            case KOp::ext_u8: return Op::uxtb;
            default: return Op::uxth;
          }
        }();
        const Reg a = use(i.a, 0);
        const Reg rd = def_reg(i.dst, 0);
        Instruction x;
        x.op = op;
        x.rd = rd;
        x.rm = a;
        ACES_CHECK_MSG(encodable(x), "unary bit op must be legalized first");
        as_.ins(x);
        finish_def(i.dst, rd);
        return;
      }
    }
    ACES_CHECK_MSG(false, "unhandled KIR opcode");
  }

  const KFunction& f_;
  Encoding enc_;
  const LoweringOptions& opts_;
  Assembler& as_;
  HelperLabels& helpers_;
  const isa::Codec& codec_;
  std::vector<Reg> allocatable_;
  std::vector<bool> callee_mask_;
  std::array<Reg, 2> scratch_{};
  std::vector<int> call_positions_;
  Allocation alloc_;
  bool needs_lr_ = false;
  std::vector<Label> labels_;
};

// ----- runtime helpers --------------------------------------------------------

// Unsigned 32/32 divide: classic align-and-subtract (the shape of a real
// __aeabi_uidiv): shift the divisor up to the dividend, then walk back down
// accumulating quotient bits. r0 = r0 / r1, clobbers r2 and r3 only, leaf.
// Matches ARM semantics (x/0 == 0). Iteration count tracks the quotient's
// bit length rather than a fixed 32.
void emit_udiv_helper(Assembler& as, Label entry) {
  using namespace isa;
  as.bind(entry);
  const Label ret0 = as.new_label();
  const Label align = as.new_label();
  const Label div_loop = as.new_label();
  const Label no_sub = as.new_label();
  const Label done = as.new_label();
  as.ins(ins_cmp_imm(isa::r1, 0));
  as.b(ret0, Cond::eq);
  as.ins(ins_mov_imm(isa::r2, 0, SetFlags::any));  // quotient
  as.ins(ins_mov_imm(isa::r3, 1, SetFlags::any));  // current bit
  as.bind(align);
  // Stop when divisor >= dividend or divisor's top bit is set.
  as.ins(ins_cmp_reg(isa::r1, isa::r0));
  as.b(div_loop, Cond::cs);
  as.ins(ins_cmp_imm(isa::r1, 0));
  as.b(div_loop, Cond::mi);
  as.ins(ins_rrr(Op::add, isa::r1, isa::r1, isa::r1, SetFlags::any));
  as.ins(ins_rrr(Op::add, isa::r3, isa::r3, isa::r3, SetFlags::any));
  as.b(align);
  as.bind(div_loop);
  as.ins(ins_cmp_reg(isa::r0, isa::r1));
  as.b(no_sub, Cond::cc);
  as.ins(ins_rrr(Op::sub, isa::r0, isa::r0, isa::r1, SetFlags::any));
  as.ins(ins_rrr(Op::add, isa::r2, isa::r2, isa::r3, SetFlags::any));
  as.bind(no_sub);
  as.ins(ins_rri(Op::lsr, isa::r1, isa::r1, 1, SetFlags::any));
  as.ins(ins_rri(Op::lsr, isa::r3, isa::r3, 1, SetFlags::yes));
  as.b(div_loop, Cond::ne);
  as.b(done);
  as.bind(ret0);
  as.ins(ins_mov_imm(isa::r2, 0, SetFlags::any));
  as.bind(done);
  as.ins(ins_mov_reg(isa::r0, isa::r2, SetFlags::any));
  as.ins(ins_ret());
}

// Signed divide on top of the unsigned core. Preserves everything but
// r0-r3 per the helper ABI.
void emit_sdiv_helper(Assembler& as, Label entry, Label udiv) {
  using namespace isa;
  as.bind(entry);
  const Label a_pos = as.new_label();
  const Label b_pos = as.new_label();
  const Label no_neg = as.new_label();
  as.ins(ins_push((1u << isa::r4) | (1u << isa::lr)));
  // r4 = sign word (a ^ b).
  as.ins(ins_mov_reg(isa::r4, isa::r0, SetFlags::any));
  as.ins(ins_rrr(Op::eor, isa::r4, isa::r4, isa::r1, SetFlags::any));
  as.ins(ins_cmp_imm(isa::r0, 0));
  as.b(a_pos, Cond::ge);
  as.ins(ins_rri(Op::rsb, isa::r0, isa::r0, 0, SetFlags::any));  // abs
  as.bind(a_pos);
  as.ins(ins_cmp_imm(isa::r1, 0));
  as.b(b_pos, Cond::ge);
  as.ins(ins_rri(Op::rsb, isa::r1, isa::r1, 0, SetFlags::any));
  as.bind(b_pos);
  as.bl(udiv);
  as.ins(ins_cmp_imm(isa::r4, 0));
  as.b(no_neg, Cond::ge);
  as.ins(ins_rri(Op::rsb, isa::r0, isa::r0, 0, SetFlags::any));
  as.bind(no_neg);
  as.ins(ins_pop((1u << isa::r4) | (1u << isa::pc)));
}

}  // namespace

std::uint32_t LoweredProgram::entry_of(const std::string& name) const {
  const auto it = entry.find(name);
  ACES_CHECK_MSG(it != entry.end(), "no lowered function named " + name);
  return it->second;
}

LoweredProgram lower_program(const std::vector<const KFunction*>& functions,
                             Encoding encoding, const LoweringOptions& options,
                             std::uint32_t text_base) {
  LoweringOptions opts = options;
  if (encoding != Encoding::b32) {
    const LoweringOptions off = LoweringOptions::for_encoding(encoding);
    opts = off;
  }

  Assembler as(encoding, text_base);
  HelperLabels helpers;
  helpers.udiv = as.new_label();
  helpers.sdiv = as.new_label();

  std::vector<Label> entries;
  std::vector<KFunction> legalized;
  legalized.reserve(functions.size());
  for (const KFunction* f : functions) {
    ACES_CHECK(f != nullptr);
    f->validate();
    legalized.push_back(Legalizer(*f, opts).run());
  }

  for (const KFunction& f : legalized) {
    const Label l = as.bound_label();
    entries.push_back(l);
    FunctionLowerer lower(f, encoding, opts, as, helpers);
    lower.emit();
    as.pool();
  }

  // Runtime helpers (emitted whether or not used is known only after
  // function emission; emit on demand).
  const bool need_udiv = helpers.udiv_used || helpers.sdiv_used;
  if (need_udiv) {
    emit_udiv_helper(as, helpers.udiv);
  }
  if (helpers.sdiv_used) {
    emit_sdiv_helper(as, helpers.sdiv, helpers.udiv);
  }
  if (!need_udiv) {
    // The labels were created eagerly; bind them harmlessly at the end so
    // the assembler's bound-label check passes.
    as.bind(helpers.udiv);
  }
  if (!helpers.sdiv_used) {
    as.bind(helpers.sdiv);
  }
  as.pool();

  LoweredProgram out;
  out.image = as.assemble();
  for (std::size_t k = 0; k < functions.size(); ++k) {
    out.entry[functions[k]->name()] = as.label_address(entries[k]);
  }
  out.code_bytes = out.image.size();
  return out;
}

LoweredProgram lower_program(const std::vector<const KFunction*>& functions,
                             Encoding encoding, std::uint32_t text_base) {
  return lower_program(functions, encoding,
                       LoweringOptions::for_encoding(encoding), text_base);
}

}  // namespace aces::kir
