// Liveness analysis and linear-scan register allocation for KIR.
//
// The allocator is deliberately faithful to what a mid-2000s embedded C
// compiler would do, because register pressure is part of the paper's
// story: the narrow encoding can only address r0..r7, so the same kernel
// spills on N16 where W32/B32 still have registers to burn.
//
// Calling convention: parameters arrive in r0..r3 (vreg k is hinted to
// r_k), the return value leaves in r0, r4..r11 are callee-saved, and
// runtime-helper calls (software divide) clobber r0..r3 — intervals that
// are live across a call site are therefore restricted to callee-saved
// registers (or spilled).
#ifndef ACES_KIR_REGALLOC_H
#define ACES_KIR_REGALLOC_H

#include <span>
#include <vector>

#include "isa/isa.h"
#include "kir/kir.h"

namespace aces::kir {

struct LiveInterval {
  VReg vreg = -1;
  int start = 0;  // instruction index of first definition (params: 0)
  int end = 0;    // last position live (inclusive)
  bool crosses_call = false;
  int use_count = 0;  // static uses+defs (spill-cost estimate)
};

struct Allocation {
  // Per-vreg physical register (index into the isa::Reg space), or -1 when
  // spilled.
  std::vector<int> phys;
  // Per-vreg spill slot (word index), or -1.
  std::vector<int> slot;
  int num_slots = 0;
  // Callee-saved registers the function actually uses (ordered).
  std::vector<isa::Reg> used_callee_saved;

  [[nodiscard]] bool spilled(VReg v) const {
    return phys[static_cast<std::size_t>(v)] < 0;
  }
  [[nodiscard]] isa::Reg reg_of(VReg v) const {
    return static_cast<isa::Reg>(phys[static_cast<std::size_t>(v)]);
  }
};

// Computes live intervals (loop-aware: intervals of values live around a
// back edge are extended across the whole loop). `call_positions` are the
// instruction indices of r0-r3-clobbering helper calls.
[[nodiscard]] std::vector<LiveInterval> compute_intervals(
    const KFunction& f, std::span<const int> call_positions);

// Linear scan over `allocatable` (ordered by preference; callee-saved
// registers must be marked via `first_callee_saved`, the index in
// `allocatable` where callee-saved registers begin... registers before it
// are caller-saved/clobbered-by-calls).
[[nodiscard]] Allocation allocate_registers(
    const KFunction& f, std::span<const isa::Reg> allocatable,
    const std::vector<bool>& callee_saved_mask,
    std::span<const int> call_positions);

}  // namespace aces::kir

#endif  // ACES_KIR_REGALLOC_H
