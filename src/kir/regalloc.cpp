#include "kir/regalloc.h"

#include <algorithm>
#include <map>

#include "support/check.h"

namespace aces::kir {

namespace {

// Collects the vregs read / written by one KIR instruction.
void uses_of(const KInsn& i, std::vector<VReg>& out) {
  const auto add = [&out](VReg v) {
    if (v >= 0) {
      out.push_back(v);
    }
  };
  add(i.a);
  if (!i.b_is_imm) {
    add(i.b);
  }
  add(i.c);
  add(i.t);
  if (i.op == KOp::bfi) {
    add(i.dst);  // bfi reads its destination
  }
}

[[nodiscard]] VReg def_of(const KInsn& i) {
  switch (i.op) {
    case KOp::storei:
    case KOp::storex:
    case KOp::br:
    case KOp::brcc:
    case KOp::ret:
    case KOp::label:
      return -1;
    default:
      return i.dst;
  }
}

}  // namespace

std::vector<LiveInterval> compute_intervals(
    const KFunction& f, std::span<const int> call_positions) {
  const auto& body = f.body();
  const int n = static_cast<int>(body.size());
  const int vregs = f.num_vregs();

  // Label -> position.
  std::map<KLabel, int> label_pos;
  for (int p = 0; p < n; ++p) {
    if (body[static_cast<std::size_t>(p)].op == KOp::label) {
      label_pos[body[static_cast<std::size_t>(p)].target] = p;
    }
  }

  // Per-position liveness via backward dataflow iterated to fixpoint
  // (cheap at kernel sizes).
  std::vector<std::vector<bool>> live_in(
      static_cast<std::size_t>(n + 1), std::vector<bool>(vregs, false));
  bool changed = true;
  while (changed) {
    changed = false;
    for (int p = n - 1; p >= 0; --p) {
      const KInsn& i = body[static_cast<std::size_t>(p)];
      // live_out(p) = union of live_in(successors)
      std::vector<bool> out(static_cast<std::size_t>(vregs), false);
      const auto merge = [&out, &live_in, vregs](int succ) {
        for (int v = 0; v < vregs; ++v) {
          if (live_in[static_cast<std::size_t>(succ)]
                     [static_cast<std::size_t>(v)]) {
            out[static_cast<std::size_t>(v)] = true;
          }
        }
      };
      if (i.op == KOp::ret) {
        // no successors
      } else if (i.op == KOp::br) {
        merge(label_pos.at(i.target));
      } else if (i.op == KOp::brcc) {
        merge(label_pos.at(i.target));
        merge(p + 1);
      } else {
        merge(p + 1);
      }
      // live_in = (out - def) + uses
      const VReg d = def_of(i);
      if (d >= 0) {
        out[static_cast<std::size_t>(d)] = false;
      }
      std::vector<VReg> uses;
      uses_of(i, uses);
      for (const VReg u : uses) {
        out[static_cast<std::size_t>(u)] = true;
      }
      if (out != live_in[static_cast<std::size_t>(p)]) {
        live_in[static_cast<std::size_t>(p)] = std::move(out);
        changed = true;
      }
    }
  }

  std::vector<LiveInterval> intervals;
  intervals.reserve(static_cast<std::size_t>(vregs));
  for (VReg v = 0; v < vregs; ++v) {
    LiveInterval iv;
    iv.vreg = v;
    iv.start = v < f.params() ? 0 : n;  // params are live-in at entry
    iv.end = v < f.params() ? 0 : -1;
    for (int p = 0; p < n; ++p) {
      const KInsn& i = body[static_cast<std::size_t>(p)];
      const bool live_here =
          live_in[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
      std::vector<VReg> uses;
      uses_of(i, uses);
      const bool used =
          std::find(uses.begin(), uses.end(), v) != uses.end();
      const bool defined = def_of(i) == v;
      if (used || defined) {
        ++iv.use_count;
      }
      if (live_here || used || defined) {
        iv.start = std::min(iv.start, p);
        iv.end = std::max(iv.end, p);
      }
    }
    if (iv.end < iv.start) {
      iv.end = iv.start;  // dead vreg: degenerate interval
    }
    intervals.push_back(iv);
  }

  // Loop extension: a value live at a back-edge target stays live through
  // the branch position.
  for (int p = 0; p < n; ++p) {
    const KInsn& i = body[static_cast<std::size_t>(p)];
    if (i.op != KOp::br && i.op != KOp::brcc) {
      continue;
    }
    const int target = label_pos.at(i.target);
    if (target > p) {
      continue;  // forward edge
    }
    for (VReg v = 0; v < f.num_vregs(); ++v) {
      if (live_in[static_cast<std::size_t>(target)]
                 [static_cast<std::size_t>(v)]) {
        auto& iv = intervals[static_cast<std::size_t>(v)];
        iv.start = std::min(iv.start, target);
        iv.end = std::max(iv.end, p);
      }
    }
  }

  // Call-crossing detection: a value is clobber-endangered when it is live
  // AFTER a call and was produced before it. The call's own result (defined
  // at the call position) is written after the clobber and is safe; so are
  // arguments consumed by the call. Using live_in directly also covers
  // parameters that are live through a call at position 0 (start == cp).
  for (const int cp : call_positions) {
    const VReg call_def = def_of(body[static_cast<std::size_t>(cp)]);
    for (VReg v = 0; v < vregs; ++v) {
      if (v == call_def) {
        continue;
      }
      if (cp + 1 <= n &&
          live_in[static_cast<std::size_t>(cp + 1)]
                 [static_cast<std::size_t>(v)]) {
        intervals[static_cast<std::size_t>(v)].crosses_call = true;
      }
    }
  }
  return intervals;
}

Allocation allocate_registers(const KFunction& f,
                              std::span<const isa::Reg> allocatable,
                              const std::vector<bool>& callee_saved_mask,
                              std::span<const int> call_positions) {
  ACES_CHECK(allocatable.size() == callee_saved_mask.size());
  const auto intervals_by_vreg = compute_intervals(f, call_positions);

  std::vector<const LiveInterval*> order;
  for (const auto& iv : intervals_by_vreg) {
    order.push_back(&iv);
  }
  std::sort(order.begin(), order.end(),
            [](const LiveInterval* a, const LiveInterval* b) {
              if (a->start != b->start) {
                return a->start < b->start;
              }
              return a->vreg < b->vreg;
            });

  Allocation alloc;
  alloc.phys.assign(static_cast<std::size_t>(f.num_vregs()), -1);
  alloc.slot.assign(static_cast<std::size_t>(f.num_vregs()), -1);

  struct Active {
    const LiveInterval* iv;
    int reg_index;  // into allocatable
  };
  std::vector<Active> active;
  std::vector<bool> in_use(allocatable.size(), false);

  const auto expire = [&](int now) {
    for (std::size_t k = 0; k < active.size();) {
      if (active[k].iv->end < now) {
        in_use[static_cast<std::size_t>(active[k].reg_index)] = false;
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
  };

  for (const LiveInterval* iv : order) {
    expire(iv->start);
    // Choose a register: honor the parameter hint (vreg k -> r_k) when
    // possible, otherwise first preference-ordered legal register.
    int chosen = -1;
    if (iv->vreg < f.params() && !iv->crosses_call) {
      for (std::size_t k = 0; k < allocatable.size(); ++k) {
        if (allocatable[k] == static_cast<isa::Reg>(iv->vreg) &&
            !in_use[k]) {
          chosen = static_cast<int>(k);
          break;
        }
      }
    }
    if (chosen < 0) {
      for (std::size_t k = 0; k < allocatable.size(); ++k) {
        if (in_use[k]) {
          continue;
        }
        if (iv->crosses_call && !callee_saved_mask[k]) {
          continue;
        }
        chosen = static_cast<int>(k);
        break;
      }
    }
    if (chosen >= 0) {
      in_use[static_cast<std::size_t>(chosen)] = true;
      active.push_back(Active{iv, chosen});
      alloc.phys[static_cast<std::size_t>(iv->vreg)] =
          allocatable[static_cast<std::size_t>(chosen)];
      continue;
    }
    // Spill: evict the legal active interval with the lowest spill cost
    // (fewest static uses, ties broken by farthest end), provided it is
    // costlier to spill the current interval.
    Active* victim = nullptr;
    for (auto& act : active) {
      const bool legal_for_current =
          !iv->crosses_call ||
          callee_saved_mask[static_cast<std::size_t>(act.reg_index)];
      if (!legal_for_current) {
        continue;
      }
      if (victim == nullptr ||
          act.iv->use_count < victim->iv->use_count ||
          (act.iv->use_count == victim->iv->use_count &&
           act.iv->end > victim->iv->end)) {
        victim = &act;
      }
    }
    if (victim != nullptr && (victim->iv->use_count < iv->use_count ||
                              (victim->iv->use_count == iv->use_count &&
                               victim->iv->end > iv->end))) {
      alloc.phys[static_cast<std::size_t>(iv->vreg)] =
          alloc.phys[static_cast<std::size_t>(victim->iv->vreg)];
      alloc.phys[static_cast<std::size_t>(victim->iv->vreg)] = -1;
      alloc.slot[static_cast<std::size_t>(victim->iv->vreg)] =
          alloc.num_slots++;
      const LiveInterval* evicted = victim->iv;
      victim->iv = iv;
      (void)evicted;
    } else {
      alloc.slot[static_cast<std::size_t>(iv->vreg)] = alloc.num_slots++;
    }
  }

  // Record which callee-saved registers ended up in use.
  for (std::size_t k = 0; k < allocatable.size(); ++k) {
    if (!callee_saved_mask[k]) {
      continue;
    }
    const isa::Reg r = allocatable[k];
    for (VReg v = 0; v < f.num_vregs(); ++v) {
      if (alloc.phys[static_cast<std::size_t>(v)] == r) {
        alloc.used_callee_saved.push_back(r);
        break;
      }
    }
  }
  std::sort(alloc.used_callee_saved.begin(), alloc.used_callee_saved.end());
  return alloc;
}

}  // namespace aces::kir
