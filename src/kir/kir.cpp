#include "kir/kir.h"

#include "support/check.h"

namespace aces::kir {

KFunction::KFunction(std::string name, int params)
    : name_(std::move(name)), params_(params) {
  ACES_CHECK_MSG(params >= 0 && params <= 4,
                 "parameters arrive in r0..r3 — at most 4");
  next_vreg_ = params;
}

VReg KFunction::v() { return next_vreg_++; }

void KFunction::append(const KInsn& i) {
  if (i.op == KOp::label) {
    bind(i.target);
    return;
  }
  body_.push_back(i);
}

KLabel KFunction::make_label() {
  label_bound_.push_back(false);
  return next_label_++;
}

void KFunction::bind(KLabel l) {
  ACES_CHECK(l >= 0 && l < next_label_);
  ACES_CHECK_MSG(!label_bound_[static_cast<std::size_t>(l)],
                 "KIR label bound twice");
  label_bound_[static_cast<std::size_t>(l)] = true;
  KInsn i;
  i.op = KOp::label;
  i.target = l;
  body_.push_back(i);
}

void KFunction::movi(VReg dst, std::int64_t imm) {
  KInsn i;
  i.op = KOp::movi;
  i.dst = dst;
  i.imm = imm;
  body_.push_back(i);
}

void KFunction::mov(VReg dst, VReg a) {
  KInsn i;
  i.op = KOp::mov;
  i.dst = dst;
  i.a = a;
  body_.push_back(i);
}

void KFunction::arith(KOp op, VReg dst, VReg a, VReg b) {
  KInsn i;
  i.op = op;
  i.dst = dst;
  i.a = a;
  i.b = b;
  body_.push_back(i);
}

void KFunction::arith_imm(KOp op, VReg dst, VReg a, std::int64_t imm) {
  KInsn i;
  i.op = op;
  i.dst = dst;
  i.a = a;
  i.b_is_imm = true;
  i.imm = imm;
  body_.push_back(i);
}

void KFunction::mla(VReg dst, VReg a, VReg b, VReg acc) {
  KInsn i;
  i.op = KOp::mla;
  i.dst = dst;
  i.a = a;
  i.b = b;
  i.c = acc;
  body_.push_back(i);
}

void KFunction::load(VReg dst, VReg base, std::int64_t offset, Width w,
                     bool sign) {
  KInsn i;
  i.op = KOp::loadi;
  i.dst = dst;
  i.a = base;
  i.b_is_imm = true;
  i.imm = offset;
  i.width = w;
  i.load_signed = sign;
  body_.push_back(i);
}

void KFunction::loadx(VReg dst, VReg base, VReg index, Width w, bool sign) {
  KInsn i;
  i.op = KOp::loadx;
  i.dst = dst;
  i.a = base;
  i.b = index;
  i.width = w;
  i.load_signed = sign;
  body_.push_back(i);
}

void KFunction::store(VReg src, VReg base, std::int64_t offset, Width w) {
  KInsn i;
  i.op = KOp::storei;
  i.a = base;
  i.b_is_imm = true;
  i.imm = offset;
  i.c = src;
  i.width = w;
  body_.push_back(i);
}

void KFunction::storex(VReg src, VReg base, VReg index, Width w) {
  KInsn i;
  i.op = KOp::storex;
  i.a = base;
  i.b = index;
  i.c = src;
  i.width = w;
  body_.push_back(i);
}

void KFunction::bfx(VReg dst, VReg a, unsigned lsb, unsigned width,
                    bool sign) {
  ACES_CHECK(width >= 1 && lsb + width <= 32);
  KInsn i;
  i.op = sign ? KOp::bfx_s : KOp::bfx_u;
  i.dst = dst;
  i.a = a;
  i.lsb = static_cast<std::uint8_t>(lsb);
  i.bf_width = static_cast<std::uint8_t>(width);
  body_.push_back(i);
}

void KFunction::bfi(VReg dst, VReg a, unsigned lsb, unsigned width) {
  ACES_CHECK(width >= 1 && lsb + width <= 32);
  KInsn i;
  i.op = KOp::bfi;
  i.dst = dst;
  i.a = a;
  i.lsb = static_cast<std::uint8_t>(lsb);
  i.bf_width = static_cast<std::uint8_t>(width);
  body_.push_back(i);
}

void KFunction::unary(KOp op, VReg dst, VReg a) {
  KInsn i;
  i.op = op;
  i.dst = dst;
  i.a = a;
  body_.push_back(i);
}

void KFunction::select(VReg dst, isa::Cond cond, VReg a, VReg b, VReg t,
                       VReg f) {
  KInsn i;
  i.op = KOp::select;
  i.dst = dst;
  i.cond = cond;
  i.a = a;
  i.b = b;
  i.t = t;
  i.c = f;
  body_.push_back(i);
}

void KFunction::select_imm(VReg dst, isa::Cond cond, VReg a, std::int64_t imm,
                           VReg t, VReg f) {
  KInsn i;
  i.op = KOp::select;
  i.dst = dst;
  i.cond = cond;
  i.a = a;
  i.b_is_imm = true;
  i.imm = imm;
  i.t = t;
  i.c = f;
  body_.push_back(i);
}

void KFunction::br(KLabel target) {
  KInsn i;
  i.op = KOp::br;
  i.target = target;
  body_.push_back(i);
}

void KFunction::brcc(isa::Cond cond, VReg a, VReg b, KLabel target) {
  KInsn i;
  i.op = KOp::brcc;
  i.cond = cond;
  i.a = a;
  i.b = b;
  i.target = target;
  body_.push_back(i);
}

void KFunction::brcc_imm(isa::Cond cond, VReg a, std::int64_t imm,
                         KLabel target) {
  KInsn i;
  i.op = KOp::brcc;
  i.cond = cond;
  i.a = a;
  i.b_is_imm = true;
  i.imm = imm;
  i.target = target;
  body_.push_back(i);
}

void KFunction::ret(VReg a) {
  KInsn i;
  i.op = KOp::ret;
  i.a = a;
  body_.push_back(i);
}

void KFunction::validate() const {
  for (std::size_t l = 0; l < label_bound_.size(); ++l) {
    ACES_CHECK_MSG(label_bound_[l],
                   name_ + ": unbound KIR label " + std::to_string(l));
  }
  ACES_CHECK_MSG(!body_.empty(), name_ + ": empty function");
  // Every function must end in an unconditional transfer.
  const KOp last = body_.back().op;
  ACES_CHECK_MSG(last == KOp::ret || last == KOp::br,
                 name_ + ": control falls off the end");
}

}  // namespace aces::kir
