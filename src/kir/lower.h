// KIR -> UC32 lowering.
//
// lower_program() turns a set of KIR functions into one assembled image for
// a chosen encoding, reproducing the compiler behaviors the paper's
// comparisons rest on:
//
//   W32  — 3-address everywhere, full predication for select, modified
//          immediates, NO movw/movt (constants come from literal pools: the
//          §2.2 cost), no hardware divide (BL to a runtime routine), no
//          bitfield/clz instructions (legalized into shift/mask sequences).
//   N16  — 2-address fixup moves, r0..r7 only (spills appear first here),
//          8-bit immediates (literal pools), branch-based select, software
//          divide, legalized bitfields.
//   B32  — narrow forms whenever possible plus movw/movt, ubfx/bfi/rbit/
//          clz, sdiv/udiv, IT-block selects and cbz/cbnz loops.
//
// LoweringOptions lets each B32 feature be toggled individually — that is
// the ablation axis of bench_ablation_features.
#ifndef ACES_KIR_LOWER_H
#define ACES_KIR_LOWER_H

#include <map>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "kir/kir.h"

namespace aces::kir {

struct LoweringOptions {
  bool use_movw_movt = true;   // B32: build constants inline (§2.2)
  bool use_bitfield = true;    // B32: ubfx/sbfx/bfi/rbit/rev/clz/sxt*
  bool use_hw_divide = true;   // B32: sdiv/udiv
  bool use_it_blocks = true;   // B32: IT-predicated select
  bool use_cbz = true;         // B32: compare-and-branch-zero

  // Capabilities implied by the encoding (B32 keeps the flags as given;
  // W32 and N16 force all of them off).
  [[nodiscard]] static LoweringOptions for_encoding(isa::Encoding e) {
    LoweringOptions o;
    if (e != isa::Encoding::b32) {
      o.use_movw_movt = false;
      o.use_bitfield = false;
      o.use_hw_divide = false;
      o.use_it_blocks = false;
      o.use_cbz = false;
    }
    return o;
  }
};

struct LoweredProgram {
  isa::Image image;
  std::map<std::string, std::uint32_t> entry;  // function name -> address
  std::uint32_t code_bytes = 0;                // total image size

  [[nodiscard]] std::uint32_t entry_of(const std::string& name) const;
};

// Lowers every function (plus any runtime helpers they need) into a single
// image based at `text_base`. Throws std::logic_error on malformed input.
[[nodiscard]] LoweredProgram lower_program(
    const std::vector<const KFunction*>& functions, isa::Encoding encoding,
    const LoweringOptions& options, std::uint32_t text_base);

// Convenience overload using the encoding's default feature set.
[[nodiscard]] LoweredProgram lower_program(
    const std::vector<const KFunction*>& functions, isa::Encoding encoding,
    std::uint32_t text_base);

}  // namespace aces::kir

#endif  // ACES_KIR_LOWER_H
