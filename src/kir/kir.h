// KIR: the kernel intermediate representation.
//
// The paper's Table 1 compares one benchmark suite compiled to three
// encodings. We reproduce that pipeline: each automotive kernel is written
// once in KIR (a small three-address IR over virtual registers) and lowered
// by lower.h to W32, N16 or B32 machine code. The encoding-specific
// lowering decisions — two-address fixups and 8-register pressure on N16,
// literal pools vs movw/movt, IT blocks vs branches, native vs emulated
// bitfield ops, hardware vs software divide — are precisely the mechanisms
// behind the code-density and performance spreads the paper reports.
#ifndef ACES_KIR_KIR_H
#define ACES_KIR_KIR_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace aces::kir {

using VReg = std::int32_t;
using KLabel = std::int32_t;

enum class KOp : std::uint8_t {
  // dst = a OP b|imm
  add, sub, rsb, mul, sdiv, udiv,
  and_, orr, eor, bic,
  shl, shr_u, shr_s, ror,
  mla,   // dst = a*b + c
  mov,   // dst = a
  movi,  // dst = imm (any 32-bit constant)
  // Memory: address = a + imm (loadi/storei) or a + b (loadx/storex).
  // Width/signedness via the Width field.
  loadi, loadx, storei, storex,
  // Bitfield / bit-level ops (imm = lsb, width field).
  bfx_u, bfx_s,  // dst = extract(a)
  bfi,           // dst = insert a into dst at [lsb,width)
  bit_rev, byte_rev, clz,
  ext_s8, ext_s16, ext_u8, ext_u16,
  // dst = (a cond b|imm) ? t : f   — the IT-block / predication lever.
  select,
  // Control flow.
  label, br,
  brcc,  // if (a cond b|imm) goto target
  ret,   // return a
};

enum class Width : std::uint8_t { w8, w16, w32 };

struct KInsn {
  KOp op = KOp::mov;
  VReg dst = -1;
  VReg a = -1;
  VReg b = -1;
  VReg c = -1;              // mla accumulator / select 'f' / store source
  VReg t = -1;              // select 't' operand
  bool b_is_imm = false;    // operand b is `imm` instead of a vreg
  std::int64_t imm = 0;     // immediate operand / movi constant
  isa::Cond cond = isa::Cond::al;  // brcc / select
  KLabel target = -1;       // label id for label/br/brcc
  Width width = Width::w32;
  bool load_signed = false;  // sign-extend sub-word loads
  std::uint8_t lsb = 0;      // bitfield lsb
  std::uint8_t bf_width = 0; // bitfield width
};

// A KIR function: parameters arrive in v0..v(params-1) (mirroring the
// machine calling convention r0..r3), execution falls through the
// instruction list, and every path ends in ret.
class KFunction {
 public:
  KFunction(std::string name, int params);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int params() const { return params_; }
  [[nodiscard]] int num_vregs() const { return next_vreg_; }
  [[nodiscard]] int num_labels() const { return next_label_; }
  [[nodiscard]] const std::vector<KInsn>& body() const { return body_; }

  // ----- builder API -----
  [[nodiscard]] VReg v();           // fresh virtual register
  [[nodiscard]] KLabel make_label();
  void bind(KLabel l);
  // Appends a pre-built instruction (used by the legalizer).
  void append(const KInsn& i);

  void movi(VReg dst, std::int64_t imm);
  void mov(VReg dst, VReg a);
  void arith(KOp op, VReg dst, VReg a, VReg b);
  void arith_imm(KOp op, VReg dst, VReg a, std::int64_t imm);
  void mla(VReg dst, VReg a, VReg b, VReg acc);
  void load(VReg dst, VReg base, std::int64_t offset, Width w,
            bool sign = false);
  void loadx(VReg dst, VReg base, VReg index, Width w, bool sign = false);
  void store(VReg src, VReg base, std::int64_t offset, Width w);
  void storex(VReg src, VReg base, VReg index, Width w);
  void bfx(VReg dst, VReg a, unsigned lsb, unsigned width,
           bool sign = false);
  void bfi(VReg dst, VReg a, unsigned lsb, unsigned width);
  void unary(KOp op, VReg dst, VReg a);
  void select(VReg dst, isa::Cond cond, VReg a, VReg b, VReg t, VReg f);
  void select_imm(VReg dst, isa::Cond cond, VReg a, std::int64_t imm, VReg t,
                  VReg f);
  void br(KLabel target);
  void brcc(isa::Cond cond, VReg a, VReg b, KLabel target);
  void brcc_imm(isa::Cond cond, VReg a, std::int64_t imm, KLabel target);
  void ret(VReg a);

  // Sanity checks (all labels bound, all paths end in ret/br). Throws
  // std::logic_error on malformed functions.
  void validate() const;

 private:
  std::string name_;
  int params_ = 0;
  int next_vreg_ = 0;
  int next_label_ = 0;
  std::vector<bool> label_bound_;
  std::vector<KInsn> body_;
};

}  // namespace aces::kir

#endif  // ACES_KIR_KIR_H
