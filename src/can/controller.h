// Memory-mapped CAN controller: the bridge between the CPU world and the
// network world.
//
// The controller is a mem::Device a System can map anywhere (by convention
// at cpu::kPeriphBase) and, on the network side, one node of a can::CanBus.
// Guest programs talk to it through a small mailbox register file and get
// RX / TX-complete / bus-error interrupt lines raised into whatever
// interrupt controller the host wires up — the paper's single-ECU and
// distributed sections meet here: a compiled ISR servicing real arbitrated
// bus traffic, including real fault confinement (error-passive demotion,
// bus-off, software-driven recovery).
//
// Register map (word registers, 32-bit naturally-aligned access only):
//   0x00 CTRL     rw  bit0 RXIE  (RX interrupt enable)
//                     bit1 TXIE  (TX-complete interrupt enable)
//                     bit2 ERRIE (bus-error / state-change int. enable)
//                     bit3 BOR   (write 1: request bus-off recovery;
//                                 self-clearing command, reads as 0)
//   0x04 STATUS   ro  bit0 RXNE   (RX FIFO non-empty)
//                     bit1 TXBUSY (frames queued, not yet on the wire)
//                     bit2 RXOVR  (RX FIFO overflowed; cleared via IRQACK)
//                     bit3 EPASS  (node is error-passive)
//                     bit4 BOFF   (node is bus-off; transmission halted
//                                  until recovery completes)
//   0x08 TXID     rw  identifier of the frame being composed; bit31 IDE
//                     (29-bit extended identifier), bit30 RTR (remote
//                     frame), SocketCAN-style
//   0x0C TXDLC    rw  data length 0..8
//   0x10 TXDATA0  rw  data bytes 0-3, little-endian
//   0x14 TXDATA1  rw  data bytes 4-7
//   0x18 TXCMD    wo  write 1: queue the composed frame for transmission
//   0x1C RXID     ro  identifier of the RX FIFO head (bit31 IDE, bit30
//                     RTR, as TXID)
//   0x20 RXDLC    ro  data length of the head
//   0x24 RXDATA0  ro  head data bytes 0-3
//   0x28 RXDATA1  ro  head data bytes 4-7
//   0x2C RXPOP    wo  write 1: pop the FIFO head
//   0x30 IRQ      ro  bit0 RX pending, bit1 TX done, bit2 RX overflow,
//                     bit3 ERR (bus error or fault-confinement state
//                     change; read STATUS/ERRCNT for the cause)
//   0x34 IRQACK   wo  write-1-to-clear IRQ bits
//   0x38 ERRCNT   ro  bits [8:0] TEC, bits [24:16] REC (live counters of
//                     the node's CAN error state machine)
//
// Interrupt protocol: the RX line is raised when a frame arrives and
// re-raised by RXPOP while frames remain, so a handler that pops one frame
// per entry never strands traffic; draining the FIFO in one entry also
// works. The TX line is raised once per frame that completes arbitration
// and transmission (errors and retransmissions are invisible to TXIE —
// only the final successful attempt completes). The ERR line fires on
// every transmit error and fault-confinement state change of this node;
// on bus-off the controller stays silent (hardware does not restart
// itself: Config::manual_bus_off_recovery, default on, mirrors real
// controllers) until software writes CTRL.BOR, after which the bus-side
// 128x11-recessive-bit sequence runs and a final ERR interrupt signals
// the return to error-active.
//
// Clock domains: bus traffic happens in sim time (ns), register access in
// core cycles. The controller never converts between them — it reacts to
// whichever side calls it. Under the co-simulation scheduler the two
// domains meet through connect_irq(sim::IrqSink&): bind the owning System
// to the Simulation and hand the controller its binding, and frame arrival
// raises the RX line at the exact shared-time instant (waking a WFI'd
// guest at zero host cost). See examples/ecu_node.cpp and
// examples/bus_fault_recovery.cpp.
#ifndef ACES_CAN_CONTROLLER_H
#define ACES_CAN_CONTROLLER_H

#include <deque>
#include <functional>
#include <string>

#include "can/bus.h"
#include "mem/device.h"
#include "sim/simulation.h"

namespace aces::can {

class CanController final : public mem::Device {
 public:
  // Register offsets (public: guest-side code and tests share them).
  static constexpr std::uint32_t kCtrl = 0x00;
  static constexpr std::uint32_t kStatus = 0x04;
  static constexpr std::uint32_t kTxId = 0x08;
  static constexpr std::uint32_t kTxDlc = 0x0C;
  static constexpr std::uint32_t kTxData0 = 0x10;
  static constexpr std::uint32_t kTxData1 = 0x14;
  static constexpr std::uint32_t kTxCmd = 0x18;
  static constexpr std::uint32_t kRxId = 0x1C;
  static constexpr std::uint32_t kRxDlc = 0x20;
  static constexpr std::uint32_t kRxData0 = 0x24;
  static constexpr std::uint32_t kRxData1 = 0x28;
  static constexpr std::uint32_t kRxPop = 0x2C;
  static constexpr std::uint32_t kIrq = 0x30;
  static constexpr std::uint32_t kIrqAck = 0x34;
  static constexpr std::uint32_t kErrCnt = 0x38;
  static constexpr std::uint32_t kRegFileBytes = 0x40;

  // CTRL bits.
  static constexpr std::uint32_t kCtrlRxie = 1u << 0;
  static constexpr std::uint32_t kCtrlTxie = 1u << 1;
  static constexpr std::uint32_t kCtrlErrie = 1u << 2;
  static constexpr std::uint32_t kCtrlBor = 1u << 3;  // command, not stored
  // STATUS bits.
  static constexpr std::uint32_t kStatusRxne = 1u << 0;
  static constexpr std::uint32_t kStatusTxBusy = 1u << 1;
  static constexpr std::uint32_t kStatusRxOvr = 1u << 2;
  static constexpr std::uint32_t kStatusEpass = 1u << 3;
  static constexpr std::uint32_t kStatusBoff = 1u << 4;
  // IRQ bits.
  static constexpr std::uint32_t kIrqRx = 1u << 0;
  static constexpr std::uint32_t kIrqTxDone = 1u << 1;
  static constexpr std::uint32_t kIrqRxOvr = 1u << 2;
  static constexpr std::uint32_t kIrqErr = 1u << 3;
  // TXID/RXID flag bits (SocketCAN layout).
  static constexpr std::uint32_t kIdExtended = 1u << 31;
  static constexpr std::uint32_t kIdRtr = 1u << 30;

  struct Config {
    unsigned rx_fifo_depth = 8;
    unsigned rx_line = 0;          // interrupt line for RX traffic
    unsigned tx_line = 1;          // interrupt line for TX completion
    unsigned err_line = 2;         // interrupt line for bus errors
    std::uint32_t access_cycles = 1;  // register-file access time
    // Real controllers stay bus-off until software restarts them; leave
    // on so guest ISRs drive recovery via CTRL.BOR. Off: the bus-side
    // recovery timer arms itself at bus-off entry.
    bool manual_bus_off_recovery = true;
  };

  // Attaches a new node named `node_name` to `bus` and subscribes it.
  CanController(CanBus& bus, std::string node_name, Config config);

  // Interrupt wiring: `raise(line)` / `clear(line)` are invoked as frames
  // arrive and drain. Kept as callbacks so the controller works with any
  // interrupt scheme (ClassicVic, Ivc, or a test probe) without the can
  // layer depending on the cpu layer.
  using IrqLineFn = std::function<void(unsigned line)>;
  void connect_irq(IrqLineFn raise, IrqLineFn clear);
  // Co-simulation wiring: deliver all lines through an IrqSink (usually
  // the cpu::SystemBinding returned by System::bind). `sink` must outlive
  // the controller's traffic.
  void connect_irq(sim::IrqSink& sink);

  // ----- mem::Device -----
  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::uint32_t size_bytes() const override {
    return kRegFileBytes;
  }
  [[nodiscard]] mem::MemResult read(std::uint32_t addr, unsigned size,
                                    mem::Access kind,
                                    std::uint64_t now) override;
  [[nodiscard]] mem::MemResult write(std::uint32_t addr, unsigned size,
                                     std::uint32_t value,
                                     std::uint64_t now) override;

  // ----- host-side probes -----
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] unsigned rx_fifo_depth() const {
    return static_cast<unsigned>(rx_fifo_.size());
  }
  struct Stats {
    std::uint64_t frames_received = 0;
    std::uint64_t frames_dropped = 0;   // RX FIFO overflow
    std::uint64_t frames_queued = 0;    // TXCMD writes
    std::uint64_t frames_transmitted = 0;
    std::uint64_t irq_raises = 0;
    std::uint64_t bus_errors = 0;       // corrupted own transmissions
    std::uint64_t bus_off_entries = 0;
    std::uint64_t recoveries = 0;       // bus-off -> error-active
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_rx(const CanFrame& frame);
  void on_tx_done(const CanFrame& frame);
  void on_err(const CanBus::ErrorEvent& event);
  void raise_line(unsigned line);
  [[nodiscard]] std::uint32_t status_bits() const;
  [[nodiscard]] static std::uint32_t pack_id(const CanFrame& frame);
  [[nodiscard]] static std::uint32_t pack_data(
      const std::array<std::uint8_t, kFdMaxPayload>& data, unsigned word);
  static void unpack_data(std::array<std::uint8_t, kFdMaxPayload>& data, unsigned word,
                          std::uint32_t value);

  std::string name_;
  Config config_;
  CanBus& bus_;
  NodeId node_;
  IrqLineFn irq_raise_;
  IrqLineFn irq_clear_;

  std::uint32_t ctrl_ = 0;
  std::uint32_t irq_status_ = 0;
  bool rx_overflowed_ = false;
  ErrorState last_state_ = ErrorState::error_active;
  CanFrame tx_frame_;        // frame under composition
  unsigned tx_in_flight_ = 0;
  std::deque<CanFrame> rx_fifo_;
  Stats stats_;
};

}  // namespace aces::can

#endif  // ACES_CAN_CONTROLLER_H
