// CAN bus discrete-event simulator.
//
// Models the arbitration behavior that makes CAN analyzable: transmission
// is non-preemptive; whenever the bus goes idle, every node with a pending
// frame enters arbitration and the lowest identifier wins. Frame times use
// the exact stuffed bit counts from frame.h. Per-identifier latency
// statistics (queue-to-delivery) are what bench_can_rta checks against the
// closed-form worst-case analysis.
#ifndef ACES_CAN_BUS_H
#define ACES_CAN_BUS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "can/frame.h"
#include "sim/event_queue.h"

namespace aces::can {

using NodeId = int;

struct MessageStats {
  std::uint64_t sent = 0;
  sim::SimTime worst_latency = 0;
  sim::SimTime total_latency = 0;

  [[nodiscard]] double avg_latency() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(total_latency) /
                           static_cast<double>(sent);
  }
};

class CanBus {
 public:
  // Delivery callback: (receiving node, frame, end-of-frame time).
  using RxHandler = std::function<void(const CanFrame&, sim::SimTime)>;
  // Transmit-complete callback, fired on the sending node at end of frame
  // (after arbitration and any blocking, i.e. at true bus-delivery time).
  using TxHandler = std::function<void(const CanFrame&, sim::SimTime)>;

  CanBus(sim::EventQueue& queue, std::uint32_t bitrate_bps);

  NodeId attach_node(std::string name);
  void subscribe(NodeId node, RxHandler handler);
  void subscribe_tx(NodeId node, TxHandler handler);

  // Queues a frame for transmission from `node`. Queues are priority-
  // ordered by identifier (priority-queued mailboxes), matching the
  // assumption of the classic CAN response-time analysis.
  void send(NodeId node, const CanFrame& frame);

  [[nodiscard]] sim::SimTime bit_time() const { return bit_time_; }
  [[nodiscard]] sim::SimTime frame_time(const CanFrame& f) const {
    return bit_time_ * exact_wire_bits(f);
  }

  [[nodiscard]] const std::map<std::uint32_t, MessageStats>& stats() const {
    return stats_;
  }
  [[nodiscard]] double utilization(sim::SimTime window) const {
    return window == 0 ? 0.0
                       : static_cast<double>(busy_time_) /
                             static_cast<double>(window);
  }

 private:
  struct Pending {
    CanFrame frame;
    sim::SimTime queued_at = 0;
  };
  struct Node {
    std::string name;
    std::deque<Pending> queue;
    std::vector<RxHandler> handlers;
    std::vector<TxHandler> tx_handlers;
  };

  void try_start();  // arbitration when idle

  sim::EventQueue& queue_;
  sim::SimTime bit_time_;
  std::vector<Node> nodes_;
  bool busy_ = false;
  sim::SimTime busy_time_ = 0;
  std::map<std::uint32_t, MessageStats> stats_;
};

}  // namespace aces::can

#endif  // ACES_CAN_BUS_H
