// CAN bus discrete-event simulator with a fault-accurate protocol layer.
//
// Models the arbitration behavior that makes CAN analyzable: transmission
// is non-preemptive; whenever the bus goes idle, every node with a pending
// frame enters arbitration and the lowest identifier wins (exact wire-bit
// ordering across standard/extended/remote formats — see
// frame.h:arbitration_key). Frame times use the exact stuffed bit counts
// from frame.h. Per-identifier latency statistics (queue-to-delivery) are
// what bench_can_rta checks against the closed-form worst-case analysis.
//
// CAN FD: a bus constructed with a data bit rate carries classic and FD
// frames on one wire. Both enter the same arbitration (the FD RRS bit is
// dominant exactly where a classic data frame's RTR is, so the classic
// key ordering carries over); an FD frame with BRS then runs its
// ESI+DLC+data+CRC span at the data bit rate and returns to the nominal
// rate for the ACK/EOF tail, per fd_exact_wire_bits' phase split. Error
// signaling always runs at the nominal rate — on a corrupted FD attempt
// the carried prefix is priced per phase, the error frame at bit_time().
// Sending an FD frame on a bus with no data bit rate is a configuration
// error (a classic-only bus would destroy FD frames with error flags).
//
// Fault model (CAN 2.0 error handling): an optional BitErrorModel decides,
// per transmission attempt, whether a bit on the wire is corrupted. A
// corrupted attempt is aborted at the corrupted bit, the bus carries an
// error frame (6-bit error flag + 8-bit delimiter + 3-bit intermission;
// an error-passive transmitter adds the 8-bit suspend-transmission
// penalty), and the frame is automatically retransmitted at the next
// arbitration with its original queue timestamp — so its measured latency
// includes every retry, which is what the faulted response-time bound in
// sched/can_rta.h must dominate. Every node runs the standard error state
// machine: transmit errors add 8 to TEC, observed errors add 1 to REC,
// successes decrement; TEC/REC >= 128 is error-passive, TEC > 255 is
// bus-off. A bus-off node drops out of arbitration and delivery until it
// has seen 128 x 11 recessive bits (a recovery timer on the shared event
// queue, armed immediately or — for nodes in manual-recovery mode, like
// real controllers waiting for software — when request_recovery is
// called), after which it rejoins error-active with cleared counters.
//
// Every stochastic choice lives in the caller-supplied BitErrorModel, so a
// model driven by a seeded support::Rng256 keeps the whole fault campaign
// deterministic and replayable.
#ifndef ACES_CAN_BUS_H
#define ACES_CAN_BUS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "can/frame.h"
#include "sim/event_queue.h"

namespace aces::can {

using NodeId = int;

// CAN 2.0 fault-confinement states.
enum class ErrorState { error_active, error_passive, bus_off };

struct MessageStats {
  std::uint64_t sent = 0;
  std::uint64_t errors = 0;  // corrupted transmission attempts
  sim::SimTime worst_latency = 0;
  sim::SimTime total_latency = 0;

  [[nodiscard]] double avg_latency() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(total_latency) /
                           static_cast<double>(sent);
  }
};

class CanBus {
 public:
  // Error-frame geometry (bit times). The per-error wire overhead
  // (flag + delimiter + intermission, plus suspend for an error-passive
  // transmitter) never exceeds the 31-bit recovery term the faulted
  // response-time analysis charges per error.
  static constexpr unsigned kErrorFlagBits = 6;
  static constexpr unsigned kErrorDelimiterBits = 8;
  static constexpr unsigned kIntermissionBits = 3;
  static constexpr unsigned kSuspendTransmissionBits = 8;
  // Bus-off recovery: 128 occurrences of 11 consecutive recessive bits.
  // (Simplified to elapsed bus time; under recovery the node is silent, so
  // a mostly-idle bus satisfies the condition in exactly this time.)
  static constexpr unsigned kBusOffRecoveryBits = 128 * 11;

  // Delivery callback: (receiving node, frame, end-of-frame time).
  using RxHandler = std::function<void(const CanFrame&, sim::SimTime)>;
  // Transmit-complete callback, fired on the sending node at end of frame
  // (after arbitration, blocking and any error retransmissions, i.e. at
  // true bus-delivery time).
  using TxHandler = std::function<void(const CanFrame&, sim::SimTime)>;

  // Error notification, per node: tx_error fires on the transmitter of a
  // corrupted attempt; state_change fires on any node whose
  // fault-confinement state moved (error-active <-> error-passive,
  // bus-off entry, recovery). Counters are post-event values.
  struct ErrorEvent {
    enum class Kind { tx_error, state_change };
    Kind kind = Kind::tx_error;
    ErrorState state = ErrorState::error_active;
    unsigned tec = 0;
    unsigned rec = 0;
  };
  using ErrHandler = std::function<void(const ErrorEvent&, sim::SimTime)>;

  // Consulted once per transmission attempt, at its start: returns the
  // zero-based wire-bit index to corrupt (clamped to the frame's length),
  // or a negative value for a clean transmission. Drive it from a seeded
  // support::Rng256 (or a mem::FaultInjector-style campaign) to keep the
  // simulation deterministic.
  using BitErrorModel =
      std::function<int(const CanFrame&, NodeId tx_node, sim::SimTime start)>;

  // `data_bitrate_bps` > 0 enables CAN FD: BRS frames run their data phase
  // at that rate. 0 keeps a classic-only bus that rejects FD frames.
  CanBus(sim::EventQueue& queue, std::uint32_t bitrate_bps,
         std::uint32_t data_bitrate_bps = 0);

  NodeId attach_node(std::string name);
  void subscribe(NodeId node, RxHandler handler);
  void subscribe_tx(NodeId node, TxHandler handler);
  void subscribe_err(NodeId node, ErrHandler handler);

  // Installs (or clears, with nullptr) the bit error model.
  void set_bit_error_model(BitErrorModel model);

  // Queues a frame for transmission from `node`. Queues are priority-
  // ordered by identifier (priority-queued mailboxes), matching the
  // assumption of the classic CAN response-time analysis. A bus-off node
  // keeps queueing; pending frames go out after recovery.
  void send(NodeId node, const CanFrame& frame);

  // ----- node lifecycle (fault injection) ---------------------------------
  // A detached node has left the wire entirely (dead transceiver /
  // unpowered ECU): it takes no part in arbitration, receives nothing,
  // does no TEC/REC bookkeeping, and its send() calls are dropped and
  // counted (FaultStats::detached_drops). Pending frames stay queued and
  // compete again after attach(). Detaching cancels an armed bus-off
  // recovery sequence; attach() re-arms it (unless in manual mode). An
  // attempt already on the wire completes — detach takes effect at the
  // next arbitration, like pulling the connector mid-frame would at the
  // next interframe space.
  void detach(NodeId node);
  void attach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const;

  // The event queue (and thus shard) this bus is driven by — the place
  // cross-shard callers marshal lifecycle calls to (sim::run_on_queue).
  [[nodiscard]] sim::EventQueue& queue() noexcept { return queue_; }

  // ----- acknowledgement modeling (opt-in) --------------------------------
  // When enabled, a data/remote frame transmitted with no attached,
  // fault-confined peer to acknowledge it suffers an ACK error at the end
  // of the data portion: the wire carries error signaling, the frame is
  // re-queued for automatic retransmission, and the transmitter's TEC
  // rises by 8 — but only while error-active. Per the CAN fault-
  // confinement exception, an error-passive transmitter does NOT bump TEC
  // on a missing ACK, so a lonely transmitter converges to error-passive
  // and then *suspends* retries (bounded work, no event-queue livelock)
  // until a peer attaches or recovers, which restarts arbitration.
  // Default off: single-transmitter micro-benches and tests predate ACK
  // modeling and expect lone transmissions to succeed.
  void set_ack_errors(bool on) { ack_errors_ = on; }
  [[nodiscard]] bool ack_errors_enabled() const { return ack_errors_; }

  // ----- dead-bus window (harness cut / partition) ------------------------
  // Schedules a window [at, at+duration) during which the wire is dead: no
  // arbitration starts (an attempt already in flight completes). Sends
  // keep queueing and the backlog drains when the window closes. Counted
  // in FaultStats::dead_bus_windows.
  void schedule_bus_dead(sim::SimTime at, sim::SimTime duration);
  [[nodiscard]] bool bus_dead() const { return bus_dead_; }

  // ----- fault confinement ------------------------------------------------
  [[nodiscard]] ErrorState error_state(NodeId node) const;
  [[nodiscard]] unsigned tec(NodeId node) const;
  [[nodiscard]] unsigned rec(NodeId node) const;
  // When manual (how real controllers behave), a bus-off node stays off
  // the wire until request_recovery(); otherwise the 128x11-bit recovery
  // timer is armed at bus-off entry.
  void set_manual_bus_off_recovery(NodeId node, bool manual);
  // Starts the recovery sequence for a bus-off node; no-op otherwise.
  void request_recovery(NodeId node);

  [[nodiscard]] sim::SimTime bit_time() const { return bit_time_; }
  // Data-phase bit time for BRS frames; 0 on a classic-only bus.
  [[nodiscard]] sim::SimTime data_bit_time() const { return data_bit_time_; }
  [[nodiscard]] bool fd_enabled() const { return data_bit_time_ > 0; }
  [[nodiscard]] sim::SimTime frame_time(const CanFrame& f) const {
    if (!f.fd) {
      return bit_time_ * exact_wire_bits(f);
    }
    const FdWireBits w = fd_exact_wire_bits(f);
    return bit_time_ * w.nominal_bits + data_phase_bit_time(f) * w.data_bits;
  }

  // Keyed by raw identifier (standard and extended identifiers share the
  // key space; a mixed-format set reusing the same numeric id merges).
  [[nodiscard]] const std::map<std::uint32_t, MessageStats>& stats() const {
    return stats_;
  }

  struct FaultStats {
    std::uint64_t bit_errors = 0;        // corrupted attempts signaled
    std::uint64_t retransmissions = 0;   // retry attempts actually started
    std::uint64_t bus_off_events = 0;
    std::uint64_t recoveries = 0;
    // Two nodes presenting the same arbitration pattern is a CAN protocol
    // violation (matching identifiers would collide past the arbitration
    // field and both "win"); the simulator resolves it deterministically
    // by node index but diagnoses it here, because it also breaks the
    // RTA's unique-priority assumption and merges per-id stats.
    std::uint64_t duplicate_id_conflicts = 0;
    std::uint32_t last_duplicate_id = 0;
    std::uint64_t ack_errors = 0;       // unacknowledged attempts (opt-in)
    std::uint64_t detached_drops = 0;   // sends from detached nodes
    std::uint64_t dead_bus_windows = 0; // scheduled wire-dead windows opened
  };
  [[nodiscard]] const FaultStats& fault_stats() const { return fault_stats_; }

  // Clears every observer-facing counter — per-message stats, fault stats,
  // accumulated busy time — without touching protocol state (pending
  // queues, TEC/REC, recovery timers). A measurement window opened by
  // reset_stats() counts exactly what happens after it: an attempt still
  // on the wire contributes only its post-reset share to utilization().
  // This is the reuse story for campaign workers sharing one topology
  // across variants (tests/campaign_test.cpp pins the regression).
  void reset_stats();

  // Fraction of `window` the wire carried bits (frames and error frames).
  // Busy time accrues when a transmission or error signal *completes*; an
  // attempt still on the wire contributes only its elapsed share, so a
  // mid-frame query never counts bits that haven't been sent.
  [[nodiscard]] double utilization(sim::SimTime window) const {
    if (window == 0) {
      return 0.0;
    }
    sim::SimTime busy = busy_time_;
    if (busy_) {
      busy += queue_.now() - tx_started_at_;
    }
    return static_cast<double>(busy) / static_cast<double>(window);
  }

 private:
  struct Pending {
    CanFrame frame;
    sim::SimTime queued_at = 0;
    unsigned attempts = 0;  // >0 at transmission start = a retransmission
  };
  struct Node {
    std::string name;
    std::deque<Pending> queue;
    std::vector<RxHandler> handlers;
    std::vector<TxHandler> tx_handlers;
    std::vector<ErrHandler> err_handlers;
    unsigned tec = 0;
    unsigned rec = 0;
    bool bus_off = false;
    bool detached = false;
    // Error-passive transmitter with nobody acknowledging: retries are
    // suspended until a peer (re)appears (see set_ack_errors).
    bool lonely = false;
    bool manual_recovery = false;
    bool recovery_armed = false;
    sim::EventId recovery_event = 0;
  };

  void try_start();  // arbitration when idle
  // Bit time governing a frame's data phase (nominal unless FD + BRS).
  [[nodiscard]] sim::SimTime data_phase_bit_time(const CanFrame& f) const {
    return (f.fd && f.brs && data_bit_time_ > 0) ? data_bit_time_ : bit_time_;
  }
  void finish_clean(NodeId winner, const Pending& pending,
                    sim::SimTime duration);
  void finish_error(NodeId winner, std::uint32_t id, sim::SimTime duration);
  void finish_ack_error(NodeId winner, std::uint32_t id,
                        sim::SimTime duration);
  // True when some node other than `tx` would acknowledge a frame.
  [[nodiscard]] bool has_ack_peer(NodeId tx) const;
  // Clears every lonely-suspend flag (a potential ACK peer appeared).
  void wake_lonely();
  void arm_recovery(NodeId node);
  void bump_tec(Node& n, NodeId node);
  // Sets one of a node's error counters and emits a state_change if the
  // fault-confinement state crossed a boundary.
  void move_counter(NodeId node, unsigned& counter, unsigned next);
  [[nodiscard]] ErrorState state_of(const Node& n) const;
  void emit(NodeId node, ErrorEvent::Kind kind);

  sim::EventQueue& queue_;
  sim::SimTime bit_time_;
  sim::SimTime data_bit_time_ = 0;  // 0: classic-only bus
  std::vector<Node> nodes_;
  bool busy_ = false;
  bool ack_errors_ = false;
  bool bus_dead_ = false;
  sim::SimTime busy_time_ = 0;      // completed wire time only
  sim::SimTime tx_started_at_ = 0;  // start of the in-flight attempt
  BitErrorModel error_model_;
  std::map<std::uint32_t, MessageStats> stats_;
  FaultStats fault_stats_;
};

}  // namespace aces::can

#endif  // ACES_CAN_BUS_H
