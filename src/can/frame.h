// CAN 2.0 + CAN FD frame model with exact bit-level serialization.
//
// The simulator prices every transmission with the frame's true on-wire
// length for both frame formats: SOF, the arbitration field (11-bit base
// identifier, extended frames add SRR/IDE and the 18-bit extension), the
// control field, data (absent for remote frames), the real CRC-15
// (poly 0x4599), then bit stuffing over the stuffable span — plus the fixed
// CRC delimiter / ACK / EOF / IFS tail. The worst-case length formula used
// by the response-time analysis (sched/can_rta.h) upper-bounds this exact
// length; tests assert that property over randomized frames.
//
// CAN FD frames split into two phases priced at different bit rates when
// BRS (bit-rate switch) is set:
//
//   nominal phase   SOF through BRS (arbitration + early control field),
//                   dynamically stuffed, plus the never-stuffed 13-bit tail
//                   (CRC delimiter, ACK slot+delimiter, EOF, IFS);
//   data phase      ESI + DLC + data bytes, dynamically stuffed
//                   (continuing the run that ends at BRS), followed by the
//                   FIXED-stuffed CRC field: a stuff bit before the 4-bit
//                   stuff count and after every 4th CRC bit, CRC-17 for
//                   payloads <= 16 bytes (field = 4+17+6 = 27 bits) and
//                   CRC-21 above (4+21+7 = 32 bits).
//
// Because the FD CRC field is fixed-stuffed its length is constant per
// payload size, so the exact FD wire length needs no CRC value — only the
// dynamic stuffing walk over the head and data bits.
#ifndef ACES_CAN_FRAME_H
#define ACES_CAN_FRAME_H

#include <array>
#include <cstdint>
#include <vector>

#include "support/check.h"

namespace aces::can {

// Largest CAN FD payload (DLC code 15).
inline constexpr unsigned kFdMaxPayload = 64;

struct CanFrame {
  std::uint32_t id = 0;   // 11-bit standard or 29-bit extended identifier
  bool extended = false;  // IDE: 29-bit identifier (CAN 2.0B)
  bool rtr = false;       // remote frame: dlc kept, no data field on wire
  bool fd = false;        // FDF: CAN FD frame (no remote frames, DLC 0..15)
  bool brs = true;        // FD only (ignored for classic frames): switch to
                          // the data bit rate after the BRS bit — the usual
                          // FD configuration, and the default the analysis
                          // side (sched::CanMessage) assumes
  unsigned dlc = 8;       // classic: 0..8 data bytes; FD: DLC code 0..15
  std::array<std::uint8_t, kFdMaxPayload> data{};
  // Origin timestamp (sim::SimTime ns), metadata only — never serialized on
  // the wire. CanBus::send stamps it with the queue instant while it is
  // still unset (negative; 0 is a valid stamp for frames queued at t=0),
  // and store-and-forward nodes (net::GatewayNode) preserve it across
  // hops, so a receiver can measure true multi-bus end-to-end latency as
  // `delivery_time - frame.timestamp`.
  std::int64_t timestamp = -1;
};

// CRC-15 over the given bit sequence (poly 0x4599, initial 0).
[[nodiscard]] std::uint16_t crc15(const std::vector<bool>& bits);

// Serializes header+data+crc (the stuffable region), unstuffed. Classic
// frames only (rejects FD).
[[nodiscard]] std::vector<bool> stuffable_bits(const CanFrame& frame);

// Exact on-wire bit count: stuffed stuffable region + fixed 13-bit tail
// (CRC delimiter, ACK slot+delimiter, 7-bit EOF, 3-bit interframe space).
// Classic frames only (rejects FD; see fd_exact_wire_bits).
[[nodiscard]] unsigned exact_wire_bits(const CanFrame& frame);

// Classic worst-case length bound (Tindell/Davis): the stuffable region of
// a data frame with `dlc` data bytes is g = 34 + 8*dlc bits for the
// standard format (SOF + 11 id + RTR/IDE/r0 + 4 DLC + 15 CRC) and
// g = 54 + 8*dlc for the extended format (SOF + 11 base id + SRR/IDE +
// 18 id extension + RTR/r1/r0 + 4 DLC + 15 CRC); it may gain
// floor((g-1)/4) stuff bits, and the 13-bit tail is never stuffed.
// Equivalently, standard: 8n + 47 + floor((34 + 8n - 1) / 4).
// `dlc` must be 0..8 — FD DLC codes must go through the FD formulas, never
// this one (a DLC code fed here would silently under-price the frame).
[[nodiscard]] constexpr unsigned worst_case_wire_bits(unsigned dlc,
                                                      bool extended = false) {
  ACES_CHECK_MSG(dlc <= 8, "classic dlc is 0..8 (FD DLC codes need the "
                           "fd_worst_case_* formulas)");
  const unsigned g = (extended ? 54u : 34u) + 8 * dlc;
  return g + (g - 1) / 4 + 13;
}

// CAN FD DLC code -> payload bytes: codes 0..8 map to themselves, codes
// 9..15 map to {12, 16, 20, 24, 32, 48, 64}.
[[nodiscard]] constexpr unsigned fd_payload_bytes(unsigned dlc) {
  ACES_CHECK_MSG(dlc <= 15, "FD DLC code is 0..15");
  if (dlc <= 8) {
    return dlc;
  }
  constexpr unsigned kMap[7] = {12, 16, 20, 24, 32, 48, 64};
  return kMap[dlc - 9];
}

// Payload bytes carried by a frame (0 for classic remote frames).
[[nodiscard]] constexpr unsigned payload_bytes(const CanFrame& f) {
  if (f.fd) {
    return fd_payload_bytes(f.dlc);
  }
  ACES_CHECK_MSG(f.dlc <= 8, "classic dlc is 0..8");
  return f.rtr ? 0u : f.dlc;
}

// Exact CAN FD wire length, split by phase. `nominal_bits` covers SOF
// through BRS (stuffed) plus the 13-bit tail, always at the arbitration
// bit rate; `data_bits` covers ESI+DLC+data (stuffed) plus the fixed-stuff
// CRC field, at the data bit rate when the frame sets BRS.
struct FdWireBits {
  unsigned nominal_bits = 0;
  unsigned data_bits = 0;
};
[[nodiscard]] FdWireBits fd_exact_wire_bits(const CanFrame& frame);

// Worst-case nominal-phase bits of a CAN FD frame. The dynamically stuffed
// head is SOF + 11 id + RRS + IDE + FDF + res + BRS = 17 bits (standard)
// or SOF + 11 base id + SRR + IDE + 18 extension + RRS + FDF + res + BRS
// = 36 bits (extended), gaining at most floor((h-1)/4) stuff bits, plus
// the 13-bit tail: standard 17+4+13 = 34, extended 36+8+13 = 57.
[[nodiscard]] constexpr unsigned fd_worst_case_nominal_bits(
    bool extended = false) {
  const unsigned h = extended ? 36u : 17u;
  return h + (h - 1) / 4 + 13;
}

// Worst-case data-phase bits of a CAN FD frame with DLC code `dlc`
// carrying n = fd_payload_bytes(dlc) bytes. The dynamic span ESI + 4 DLC +
// 8n data = 5+8n bits follows a run in progress at BRS, so it gains at
// most 1 + floor((5+8n-1)/4) = 2n+2 stuff bits; the CRC field is a fixed
// 27 bits (CRC-17, n <= 16) or 32 bits (CRC-21). Closed forms:
//   n <= 16:  (5+8n) + (2n+2) + 27 = 10n + 34
//   n >  16:  (5+8n) + (2n+2) + 32 = 10n + 39
[[nodiscard]] constexpr unsigned fd_worst_case_data_bits(unsigned dlc) {
  const unsigned n = fd_payload_bytes(dlc);
  return 10 * n + (n <= 16 ? 34u : 39u);
}

// Total arbitration ordering of frames on one bus: compares the wire bits
// a receiver would see through the arbitration phase (dominant 0 wins).
// Base identifier first; on a tie a standard frame beats an extended one
// (its RTR/IDE bits are dominant where the extended frame sends the
// recessive SRR/IDE), and a data frame beats the same-id remote frame.
// Key layout (smaller wins): [31:21] base id, [20] RTR/SRR, [19] IDE,
// [18:1] id extension, [0] extended RTR.
// FD-ness does not enter the key: an FD frame sends dominant RRS where a
// classic data frame sends dominant RTR, so a classic and an FD frame with
// the same identifier and format tie through arbitration — a protocol
// anomaly the bus reports via its duplicate-identifier diagnosis.
[[nodiscard]] constexpr std::uint32_t arbitration_key(const CanFrame& f) {
  if (!f.extended) {
    return ((f.id & 0x7FFu) << 21) | ((f.rtr ? 1u : 0u) << 20);
  }
  return (((f.id >> 18) & 0x7FFu) << 21) | (1u << 20) | (1u << 19) |
         ((f.id & 0x3FFFFu) << 1) | (f.rtr ? 1u : 0u);
}

}  // namespace aces::can

#endif  // ACES_CAN_FRAME_H
