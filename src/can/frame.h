// CAN 2.0 frame model with exact bit-level serialization.
//
// The simulator prices every transmission with the frame's true on-wire
// length for both frame formats: SOF, the arbitration field (11-bit base
// identifier, extended frames add SRR/IDE and the 18-bit extension), the
// control field, data (absent for remote frames), the real CRC-15
// (poly 0x4599), then bit stuffing over the stuffable span — plus the fixed
// CRC delimiter / ACK / EOF / IFS tail. The worst-case length formula used
// by the response-time analysis (sched/can_rta.h) upper-bounds this exact
// length; tests assert that property over randomized frames.
#ifndef ACES_CAN_FRAME_H
#define ACES_CAN_FRAME_H

#include <array>
#include <cstdint>
#include <vector>

namespace aces::can {

struct CanFrame {
  std::uint32_t id = 0;   // 11-bit standard or 29-bit extended identifier
  bool extended = false;  // IDE: 29-bit identifier (CAN 2.0B)
  bool rtr = false;       // remote frame: dlc kept, no data field on wire
  unsigned dlc = 8;       // 0..8 data bytes
  std::array<std::uint8_t, 8> data{};
  // Origin timestamp (sim::SimTime ns), metadata only — never serialized on
  // the wire. CanBus::send stamps it with the queue instant while it is
  // still unset (negative; 0 is a valid stamp for frames queued at t=0),
  // and store-and-forward nodes (net::GatewayNode) preserve it across
  // hops, so a receiver can measure true multi-bus end-to-end latency as
  // `delivery_time - frame.timestamp`.
  std::int64_t timestamp = -1;
};

// CRC-15 over the given bit sequence (poly 0x4599, initial 0).
[[nodiscard]] std::uint16_t crc15(const std::vector<bool>& bits);

// Serializes header+data+crc (the stuffable region), unstuffed.
[[nodiscard]] std::vector<bool> stuffable_bits(const CanFrame& frame);

// Exact on-wire bit count: stuffed stuffable region + fixed 13-bit tail
// (CRC delimiter, ACK slot+delimiter, 7-bit EOF, 3-bit interframe space).
[[nodiscard]] unsigned exact_wire_bits(const CanFrame& frame);

// Classic worst-case length bound (Tindell/Davis): the stuffable region of
// a data frame with `dlc` data bytes is g = 34 + 8*dlc bits for the
// standard format (SOF + 11 id + RTR/IDE/r0 + 4 DLC + 15 CRC) and
// g = 54 + 8*dlc for the extended format (SOF + 11 base id + SRR/IDE +
// 18 id extension + RTR/r1/r0 + 4 DLC + 15 CRC); it may gain
// floor((g-1)/4) stuff bits, and the 13-bit tail is never stuffed.
// Equivalently, standard: 8n + 47 + floor((34 + 8n - 1) / 4).
[[nodiscard]] constexpr unsigned worst_case_wire_bits(unsigned dlc,
                                                      bool extended = false) {
  const unsigned g = (extended ? 54u : 34u) + 8 * dlc;
  return g + (g - 1) / 4 + 13;
}

// Total arbitration ordering of frames on one bus: compares the wire bits
// a receiver would see through the arbitration phase (dominant 0 wins).
// Base identifier first; on a tie a standard frame beats an extended one
// (its RTR/IDE bits are dominant where the extended frame sends the
// recessive SRR/IDE), and a data frame beats the same-id remote frame.
// Key layout (smaller wins): [31:21] base id, [20] RTR/SRR, [19] IDE,
// [18:1] id extension, [0] extended RTR.
[[nodiscard]] constexpr std::uint32_t arbitration_key(const CanFrame& f) {
  if (!f.extended) {
    return ((f.id & 0x7FFu) << 21) | ((f.rtr ? 1u : 0u) << 20);
  }
  return (((f.id >> 18) & 0x7FFu) << 21) | (1u << 20) | (1u << 19) |
         ((f.id & 0x3FFFFu) << 1) | (f.rtr ? 1u : 0u);
}

}  // namespace aces::can

#endif  // ACES_CAN_FRAME_H
