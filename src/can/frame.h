// CAN 2.0A frame model with exact bit-level serialization.
//
// The simulator prices every transmission with the frame's true on-wire
// length: SOF, 11-bit identifier, RTR/IDE/r0, DLC, data, the real CRC-15
// (poly 0x4599), then bit stuffing over the stuffable span — plus the fixed
// CRC delimiter / ACK / EOF / IFS tail. The worst-case length formula used
// by the response-time analysis (sched/can_rta.h) upper-bounds this exact
// length; tests assert that property over randomized frames.
#ifndef ACES_CAN_FRAME_H
#define ACES_CAN_FRAME_H

#include <array>
#include <cstdint>
#include <vector>

namespace aces::can {

struct CanFrame {
  std::uint32_t id = 0;  // 11-bit standard identifier (lower wins arbitration)
  unsigned dlc = 8;      // 0..8 data bytes
  std::array<std::uint8_t, 8> data{};
};

// CRC-15 over the given bit sequence (poly 0x4599, initial 0).
[[nodiscard]] std::uint16_t crc15(const std::vector<bool>& bits);

// Serializes header+data+crc (the stuffable region), unstuffed.
[[nodiscard]] std::vector<bool> stuffable_bits(const CanFrame& frame);

// Exact on-wire bit count: stuffed stuffable region + fixed 13-bit tail
// (CRC delimiter, ACK slot+delimiter, 7-bit EOF, 3-bit interframe space).
[[nodiscard]] unsigned exact_wire_bits(const CanFrame& frame);

// Classic worst-case length bound for a standard frame with `dlc` data
// bytes (Tindell/Davis): stuffable region g = 34 + 8*dlc may gain
// floor((g-1)/4) stuff bits; the 13-bit tail is never stuffed.
[[nodiscard]] constexpr unsigned worst_case_wire_bits(unsigned dlc) {
  const unsigned g = 34 + 8 * dlc;
  return g + (g - 1) / 4 + 13;
}

}  // namespace aces::can

#endif  // ACES_CAN_FRAME_H
