// Seeded, analyzable bit-error campaigns for can::CanBus.
//
// PR 4 gave CanBus a BitErrorModel hook and left seeding to the caller;
// every test and example hand-rolled the same three lines of state (an RNG,
// a minimum-gap clock, a uniform bit choice). This header productizes that
// pattern as the one campaign construction the batch engine (src/campaign/)
// hands out per variant:
//
//   - deterministic: all randomness comes from a support::Pcg32 seeded from
//     the config, so a campaign replays bit-identically from its seed;
//   - analyzable: error *instants* (the corrupted bit's position on the
//     wire, not the attempt start) are spaced at least `min_interarrival`
//     apart, which is exactly the fault hypothesis Tindell's E(t) term in
//     sched::can_rta charges — so the faulted analytic bound dominates the
//     simulated latencies for as long as no node reaches bus-off.
//
// The returned model owns its state; installing it on a second bus (or
// re-running a topology) requires a fresh call with a fresh seed, which is
// how per-variant stream isolation stays airtight.
#ifndef ACES_CAN_BIT_ERROR_H
#define ACES_CAN_BIT_ERROR_H

#include <cstdint>

#include "can/bus.h"

namespace aces::can {

struct SeededErrorCampaign {
  // Minimum gap between consecutive error instants (T_error of the faulted
  // response-time analysis). 0 disables the campaign entirely.
  sim::SimTime min_interarrival = 0;
  // Corruption chance per transmission attempt that is far enough from the
  // previous error to be eligible.
  double probability = 1.0;
  // Per-campaign RNG stream (support::Pcg32 seed); derive it from a master
  // seed with support::derive_stream for batch sweeps.
  std::uint64_t seed = 1;
  // Optional sub-stream selector (e.g. the bus index of a multi-bus
  // variant), so one variant seed can drive several non-overlapping
  // campaigns.
  std::uint64_t stream = 0;
};

// Builds a CanBus::BitErrorModel implementing `campaign` against `bus`'s
// bit time. The bus reference is only used for timing arithmetic and must
// outlive the returned callable.
[[nodiscard]] CanBus::BitErrorModel make_seeded_error_model(
    const CanBus& bus, const SeededErrorCampaign& campaign);

}  // namespace aces::can

#endif  // ACES_CAN_BIT_ERROR_H
