#include "can/bit_error.h"

#include <memory>

#include "support/splitmix.h"

namespace aces::can {

CanBus::BitErrorModel make_seeded_error_model(
    const CanBus& bus, const SeededErrorCampaign& campaign) {
  if (campaign.min_interarrival <= 0 || campaign.probability <= 0.0) {
    return nullptr;
  }
  struct State {
    support::Pcg32 rng;
    bool armed = false;           // an error instant has been recorded
    sim::SimTime last_error = 0;  // wire time of the last corrupted bit
  };
  auto st = std::make_shared<State>(
      State{support::Pcg32(campaign.seed, campaign.stream), false, 0});
  const sim::SimTime gap = campaign.min_interarrival;
  const double p = campaign.probability;
  return [st, &bus, gap, p](const CanFrame& frame, NodeId,
                            sim::SimTime start) -> int {
    // Gap check against the *earliest* instant this attempt could be
    // corrupted, so ineligible attempts consume no RNG draws and the
    // stream stays aligned with the sequence of eligible attempts.
    if (st->armed && start + bus.bit_time() < st->last_error + gap) {
      return -1;
    }
    if (!st->rng.chance(p)) {
      return -1;
    }
    const auto bits = static_cast<std::uint32_t>(exact_wire_bits(frame));
    const int bit = static_cast<int>(st->rng.below(bits));
    // The chosen bit lands at a known wire time; if it would violate the
    // spacing hypothesis, skip this attempt (keeps E(t) sound without
    // biasing the bit distribution).
    const sim::SimTime instant =
        start + (static_cast<sim::SimTime>(bit) + 1) * bus.bit_time();
    if (st->armed && instant < st->last_error + gap) {
      return -1;
    }
    st->armed = true;
    st->last_error = instant;
    return bit;
  };
}

}  // namespace aces::can
