#include "can/bus.h"

#include <algorithm>

#include "support/check.h"

namespace aces::can {

using sim::SimTime;

CanBus::CanBus(sim::EventQueue& queue, std::uint32_t bitrate_bps,
               std::uint32_t data_bitrate_bps)
    : queue_(queue) {
  ACES_CHECK(bitrate_bps > 0);
  bit_time_ = sim::kSecond / bitrate_bps;
  ACES_CHECK_MSG(bit_time_ > 0, "bit rate too high for ns resolution");
  if (data_bitrate_bps > 0) {
    ACES_CHECK_MSG(data_bitrate_bps >= bitrate_bps,
                   "FD data bit rate below the arbitration rate");
    data_bit_time_ = sim::kSecond / data_bitrate_bps;
    ACES_CHECK_MSG(data_bit_time_ > 0,
                   "data bit rate too high for ns resolution");
  }
  static_assert(kErrorFlagBits + kErrorDelimiterBits + kIntermissionBits +
                        kSuspendTransmissionBits <=
                    31,
                "error signaling must stay under the 31-bit RTA recovery "
                "term");
}

NodeId CanBus::attach_node(std::string name) {
  Node n;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  // A new potential acknowledger joined: suspended lonely transmitters
  // retry. (Gated so a classic bus build-up never triggers arbitration
  // from inside attach_node.)
  bool any_lonely = false;
  for (const Node& node : nodes_) {
    any_lonely = any_lonely || node.lonely;
  }
  if (any_lonely) {
    wake_lonely();
    if (!busy_) {
      try_start();
    }
  }
  return static_cast<NodeId>(nodes_.size() - 1);
}

void CanBus::subscribe(NodeId node, RxHandler handler) {
  nodes_[static_cast<std::size_t>(node)].handlers.push_back(
      std::move(handler));
}

void CanBus::subscribe_tx(NodeId node, TxHandler handler) {
  nodes_[static_cast<std::size_t>(node)].tx_handlers.push_back(
      std::move(handler));
}

void CanBus::subscribe_err(NodeId node, ErrHandler handler) {
  nodes_[static_cast<std::size_t>(node)].err_handlers.push_back(
      std::move(handler));
}

void CanBus::set_bit_error_model(BitErrorModel model) {
  error_model_ = std::move(model);
}

ErrorState CanBus::state_of(const Node& n) const {
  if (n.bus_off) {
    return ErrorState::bus_off;
  }
  if (n.tec >= 128 || n.rec >= 128) {
    return ErrorState::error_passive;
  }
  return ErrorState::error_active;
}

ErrorState CanBus::error_state(NodeId node) const {
  return state_of(nodes_[static_cast<std::size_t>(node)]);
}

unsigned CanBus::tec(NodeId node) const {
  return nodes_[static_cast<std::size_t>(node)].tec;
}

unsigned CanBus::rec(NodeId node) const {
  return nodes_[static_cast<std::size_t>(node)].rec;
}

void CanBus::set_manual_bus_off_recovery(NodeId node, bool manual) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  n.manual_recovery = manual;
  if (!manual && n.bus_off) {
    arm_recovery(node);
  } else if (manual && n.recovery_armed) {
    // Switching to manual revokes an auto-armed sequence: the node stays
    // off the wire until request_recovery().
    queue_.cancel(n.recovery_event);
    n.recovery_armed = false;
  }
}

void CanBus::request_recovery(NodeId node) {
  if (nodes_[static_cast<std::size_t>(node)].bus_off) {
    arm_recovery(node);
  }
}

void CanBus::detach(NodeId node) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.detached) {
    return;
  }
  n.detached = true;
  if (n.recovery_armed) {
    // An unpowered controller cannot observe the 128x11 recessive bits;
    // the sequence restarts from scratch at attach().
    queue_.cancel(n.recovery_event);
    n.recovery_armed = false;
  }
}

void CanBus::attach(NodeId node) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!n.detached) {
    return;
  }
  n.detached = false;
  if (n.bus_off && !n.manual_recovery) {
    arm_recovery(node);
  }
  // A new potential acknowledger: suspended lonely transmitters retry.
  wake_lonely();
  if (!busy_) {
    try_start();
  }
}

bool CanBus::attached(NodeId node) const {
  return !nodes_[static_cast<std::size_t>(node)].detached;
}

bool CanBus::has_ack_peer(NodeId tx) const {
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const Node& n = nodes_[k];
    if (static_cast<NodeId>(k) != tx && !n.detached && !n.bus_off) {
      return true;
    }
  }
  return false;
}

void CanBus::wake_lonely() {
  for (Node& n : nodes_) {
    n.lonely = false;
  }
}

void CanBus::schedule_bus_dead(sim::SimTime at, sim::SimTime duration) {
  ACES_CHECK_MSG(duration > 0, "dead-bus window needs a positive duration");
  queue_.schedule_at(at, [this] {
    bus_dead_ = true;
    ++fault_stats_.dead_bus_windows;
  });
  queue_.schedule_at(at + duration, [this] {
    bus_dead_ = false;
    if (!busy_) {
      try_start();
    }
  });
}

void CanBus::emit(NodeId node, ErrorEvent::Kind kind) {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  ErrorEvent e;
  e.kind = kind;
  e.state = state_of(n);
  e.tec = n.tec;
  e.rec = n.rec;
  for (const ErrHandler& h : n.err_handlers) {
    h(e, queue_.now());
  }
}

void CanBus::send(NodeId node, const CanFrame& frame) {
  if (frame.fd) {
    ACES_CHECK_MSG(fd_enabled(),
                   "FD frame on a classic-only bus (construct the CanBus "
                   "with a data bit rate to enable CAN FD)");
    ACES_CHECK_MSG(!frame.rtr, "CAN FD has no remote frames");
    ACES_CHECK_MSG(frame.dlc <= 15, "FD DLC code is 0..15");
  } else {
    // Reject DLC codes early: a 9..15 code fed through the classic wire
    // formulas would silently under-price the frame.
    ACES_CHECK_MSG(frame.dlc <= 8, "classic dlc is 0..8");
  }
  if (nodes_[static_cast<std::size_t>(node)].detached) {
    // A dead transceiver drives nothing onto the wire; the write is lost
    // (and observable), not deferred.
    ++fault_stats_.detached_drops;
    return;
  }
  Pending p;
  p.frame = frame;
  p.queued_at = queue_.now();
  if (p.frame.timestamp < 0) {
    // First queuing stamps the origin; a forwarder re-sending the frame on
    // another bus keeps the stamp (t=0 included), so end-to-end latency
    // stays measurable.
    p.frame.timestamp = queue_.now();
  }
  // Controllers with priority-ordered mailboxes: the node always offers
  // its highest-priority frame to arbitration (required for the classic
  // RTA to be sound; FIFO-queued controllers need a different analysis).
  const std::uint32_t key = arbitration_key(frame);
  auto& q = nodes_[static_cast<std::size_t>(node)].queue;
  auto it = q.begin();
  while (it != q.end() && arbitration_key(it->frame) <= key) {
    ++it;
  }
  q.insert(it, std::move(p));
  if (!busy_) {
    try_start();
  }
}

void CanBus::try_start() {
  ACES_CHECK(!busy_);
  if (bus_dead_) {
    return;  // wire is cut: backlog drains when the window closes
  }
  // Arbitration: every attached, fault-confined node presents its
  // head-of-queue frame; the dominant-winning bit pattern (lowest key)
  // takes the bus. Lonely-suspended transmitters sit out until a peer
  // appears.
  NodeId winner = -1;
  std::uint32_t best_key = 0;
  bool duplicate = false;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    const Node& n = nodes_[k];
    if (n.bus_off || n.detached || n.lonely || n.queue.empty()) {
      continue;
    }
    const std::uint32_t key = arbitration_key(n.queue.front().frame);
    if (winner < 0 || key < best_key) {
      winner = static_cast<NodeId>(k);
      best_key = key;
      duplicate = false;
    } else if (key == best_key) {
      duplicate = true;
    }
  }
  if (winner < 0) {
    return;
  }
  Node& node = nodes_[static_cast<std::size_t>(winner)];
  if (duplicate) {
    // Two nodes won arbitration with the same bit pattern: a protocol
    // violation (their data/CRC bits would now collide as undetected-by-
    // arbitration bit errors). Resolved deterministically by node index,
    // but diagnosed, because it also voids the analysis' unique-priority
    // assumption and merges the per-identifier statistics.
    ++fault_stats_.duplicate_id_conflicts;
    fault_stats_.last_duplicate_id = node.queue.front().frame.id;
  }

  // Take the winning frame off its queue and claim the wire *before*
  // consulting the (user-supplied) error model: a model that reacts by
  // calling send() must neither start a nested transmission nor shift
  // this frame out from under us via deque insertion.
  Pending pending = std::move(node.queue.front());
  node.queue.pop_front();
  if (pending.attempts > 0) {
    ++fault_stats_.retransmissions;  // a previously-corrupted frame retries
  }
  ++pending.attempts;
  // Wire geometry of this attempt. For FD frames the phase split prices
  // the ESI+DLC+data+CRC span at the data bit rate (when BRS is set);
  // classic frames run entirely at the nominal rate.
  const bool fd = pending.frame.fd;
  FdWireBits fw;
  unsigned wire_bits = 0;
  if (fd) {
    fw = fd_exact_wire_bits(pending.frame);
    wire_bits = fw.nominal_bits + fw.data_bits;
  } else {
    wire_bits = exact_wire_bits(pending.frame);
  }
  const SimTime data_bit = data_phase_bit_time(pending.frame);
  // Duration of the first `bits` wire bits of this attempt. The FD data
  // phase sits between the stuffed head (nominal_bits - 13 bits) and the
  // 13-bit tail, both at the nominal rate.
  const auto prefix_time = [&](unsigned bits) -> SimTime {
    if (!fd) {
      return bit_time_ * bits;
    }
    const unsigned head = fw.nominal_bits - 13;
    if (bits <= head) {
      return bit_time_ * bits;
    }
    if (bits <= head + fw.data_bits) {
      return bit_time_ * head + data_bit * (bits - head);
    }
    return bit_time_ * head + data_bit * fw.data_bits +
           bit_time_ * (bits - head - fw.data_bits);
  };
  busy_ = true;
  tx_started_at_ = queue_.now();
  int corrupt = -1;
  if (error_model_) {
    corrupt = error_model_(pending.frame, winner, queue_.now());
    corrupt = std::min(corrupt, static_cast<int>(wire_bits) - 1);
  }
  if (corrupt < 0) {
    const SimTime duration = prefix_time(wire_bits);
    queue_.schedule_in(duration, [this, pending, winner, duration] {
      finish_clean(winner, pending, duration);
    });
  } else {
    // The error is detected at the corrupted bit; the wire carries the
    // error frame instead of the rest of this attempt, and the frame goes
    // back into the queue (original timestamp, ahead of any equal-key
    // sibling it was queued before) for automatic retransmission. Error
    // signaling is always at the nominal rate (an FD transmitter drops
    // back to the arbitration bit rate when it detects an error).
    const bool passive = state_of(node) == ErrorState::error_passive;
    const unsigned signal_bits = kErrorFlagBits + kErrorDelimiterBits +
                                 kIntermissionBits +
                                 (passive ? kSuspendTransmissionBits : 0);
    const SimTime duration = prefix_time(static_cast<unsigned>(corrupt) + 1) +
                             bit_time_ * signal_bits;
    const std::uint32_t id = pending.frame.id;
    const std::uint32_t key = arbitration_key(pending.frame);
    auto it = node.queue.begin();
    while (it != node.queue.end() && arbitration_key(it->frame) < key) {
      ++it;
    }
    node.queue.insert(it, std::move(pending));
    queue_.schedule_in(duration, [this, winner, id, duration] {
      finish_error(winner, id, duration);
    });
  }
}

void CanBus::finish_clean(NodeId winner, const Pending& pending,
                          SimTime duration) {
  Node& tx = nodes_[static_cast<std::size_t>(winner)];
  if (ack_errors_ && !has_ack_peer(winner)) {
    // Nobody drove the ACK slot dominant: the transmitter signals an
    // error at the end of the data portion and the wire carries the
    // error frame (always at the nominal rate). The frame re-queues with
    // its original timestamp for automatic retransmission.
    const bool passive = state_of(tx) == ErrorState::error_passive;
    const unsigned signal_bits = kErrorFlagBits + kErrorDelimiterBits +
                                 kIntermissionBits +
                                 (passive ? kSuspendTransmissionBits : 0);
    const SimTime extra = bit_time_ * signal_bits;
    const std::uint32_t id = pending.frame.id;
    const std::uint32_t key = arbitration_key(pending.frame);
    auto it = tx.queue.begin();
    while (it != tx.queue.end() && arbitration_key(it->frame) < key) {
      ++it;
    }
    tx.queue.insert(it, pending);
    // busy_ stays set through the error signaling.
    queue_.schedule_in(extra, [this, winner, id, total = duration + extra] {
      finish_ack_error(winner, id, total);
    });
    return;
  }
  busy_ = false;
  busy_time_ += duration;
  MessageStats& s = stats_[pending.frame.id];
  ++s.sent;
  const SimTime latency = queue_.now() - pending.queued_at;
  s.worst_latency = std::max(s.worst_latency, latency);
  s.total_latency += latency;
  // Successful exchange: the transmitter's TEC and every receiver's REC
  // count down, possibly re-promoting error-passive nodes.
  Node& w = nodes_[static_cast<std::size_t>(winner)];
  if (w.tec > 0) {
    move_counter(winner, w.tec, w.tec - 1);
  }
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    Node& n = nodes_[k];
    if (static_cast<NodeId>(k) == winner || n.bus_off || n.detached ||
        n.rec == 0) {
      continue;
    }
    move_counter(static_cast<NodeId>(k), n.rec, n.rec - 1);
  }
  // Transmit-complete on the sender, then deliver to every other
  // attached, fault-confined node (bus-off and detached nodes are
  // disconnected from traffic).
  for (const TxHandler& h : w.tx_handlers) {
    h(pending.frame, queue_.now());
  }
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (static_cast<NodeId>(k) == winner || nodes_[k].bus_off ||
        nodes_[k].detached) {
      continue;
    }
    for (const RxHandler& h : nodes_[k].handlers) {
      h(pending.frame, queue_.now());
    }
  }
  // A handler may have sent synchronously (mailbox chaining on
  // transmit-complete) and already restarted arbitration.
  if (!busy_) {
    try_start();
  }
}

void CanBus::move_counter(NodeId node, unsigned& counter, unsigned next) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  const ErrorState prev = state_of(n);
  counter = next;
  if (state_of(n) != prev) {
    emit(node, ErrorEvent::Kind::state_change);
  }
}

void CanBus::bump_tec(Node& n, NodeId node) {
  const ErrorState prev = state_of(n);
  n.tec = std::min(n.tec + 8, 256u);  // 256 marks the bus-off crossing
  if (!n.bus_off && n.tec > 255) {
    n.bus_off = true;
    ++fault_stats_.bus_off_events;
    if (!n.manual_recovery) {
      arm_recovery(node);
    }
  }
  if (state_of(n) != prev) {
    emit(node, ErrorEvent::Kind::state_change);
  }
}

void CanBus::finish_error(NodeId winner, std::uint32_t id, SimTime duration) {
  busy_ = false;
  busy_time_ += duration;
  ++fault_stats_.bit_errors;
  ++stats_[id].errors;
  Node& w = nodes_[static_cast<std::size_t>(winner)];
  bump_tec(w, winner);
  emit(winner, ErrorEvent::Kind::tx_error);
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    Node& n = nodes_[k];
    if (static_cast<NodeId>(k) == winner || n.bus_off || n.detached) {
      continue;
    }
    // Saturates at 255: an 8-bit counter, like real silicon.
    move_counter(static_cast<NodeId>(k), n.rec, std::min(n.rec + 1, 255u));
  }
  // Next arbitration: the corrupted frame (still queued) competes again,
  // unless its node just went bus-off — then it waits for recovery.
  if (!busy_) {
    try_start();
  }
}

void CanBus::finish_ack_error(NodeId winner, std::uint32_t id,
                              SimTime duration) {
  busy_ = false;
  busy_time_ += duration;
  ++fault_stats_.ack_errors;
  ++stats_[id].errors;
  Node& w = nodes_[static_cast<std::size_t>(winner)];
  if (state_of(w) == ErrorState::error_active) {
    // TEC +8, as for any transmit error. ACK errors stop counting at
    // error-passive (the fault-confinement exception), so a lonely
    // transmitter can never reach bus-off from missing ACKs alone.
    bump_tec(w, winner);
  } else {
    // Error-passive with nobody acknowledging: suspend retries until a
    // peer attaches or recovers — bounded behavior instead of an
    // event-queue livelock.
    w.lonely = true;
  }
  emit(winner, ErrorEvent::Kind::tx_error);
  if (!busy_) {
    try_start();
  }
}

void CanBus::arm_recovery(NodeId node) {
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.recovery_armed) {
    return;
  }
  n.recovery_armed = true;
  n.recovery_event =
      queue_.schedule_in(bit_time_ * kBusOffRecoveryBits, [this, node] {
    Node& rn = nodes_[static_cast<std::size_t>(node)];
    rn.bus_off = false;
    rn.recovery_armed = false;
    rn.tec = 0;
    rn.rec = 0;
    ++fault_stats_.recoveries;
    emit(node, ErrorEvent::Kind::state_change);
    // The recovered node can acknowledge again: wake suspended lonely
    // transmitters along with restarting arbitration.
    wake_lonely();
    if (!busy_) {
      try_start();
    }
  });
}

void CanBus::reset_stats() {
  stats_.clear();
  fault_stats_ = FaultStats{};
  busy_time_ = 0;
  if (busy_) {
    // An attempt is on the wire: charge only its post-reset share to the
    // new window (tx_started_at_ is otherwise only read by utilization).
    tx_started_at_ = queue_.now();
  }
}

}  // namespace aces::can
