#include "can/bus.h"

#include "support/check.h"

namespace aces::can {

using sim::SimTime;

CanBus::CanBus(sim::EventQueue& queue, std::uint32_t bitrate_bps)
    : queue_(queue) {
  ACES_CHECK(bitrate_bps > 0);
  bit_time_ = sim::kSecond / bitrate_bps;
  ACES_CHECK_MSG(bit_time_ > 0, "bit rate too high for ns resolution");
}

NodeId CanBus::attach_node(std::string name) {
  Node n;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void CanBus::subscribe(NodeId node, RxHandler handler) {
  nodes_[static_cast<std::size_t>(node)].handlers.push_back(
      std::move(handler));
}

void CanBus::subscribe_tx(NodeId node, TxHandler handler) {
  nodes_[static_cast<std::size_t>(node)].tx_handlers.push_back(
      std::move(handler));
}

void CanBus::send(NodeId node, const CanFrame& frame) {
  Pending p;
  p.frame = frame;
  p.queued_at = queue_.now();
  // Controllers with priority-ordered mailboxes: the node always offers
  // its lowest identifier to arbitration (required for the classic RTA to
  // be sound; FIFO-queued controllers need a different analysis).
  auto& q = nodes_[static_cast<std::size_t>(node)].queue;
  auto it = q.begin();
  while (it != q.end() && it->frame.id <= frame.id) {
    ++it;
  }
  q.insert(it, std::move(p));
  if (!busy_) {
    try_start();
  }
}

void CanBus::try_start() {
  ACES_CHECK(!busy_);
  // Arbitration: every node presents its head-of-queue frame; the lowest
  // identifier (dominant bits win) takes the bus.
  NodeId winner = -1;
  for (std::size_t k = 0; k < nodes_.size(); ++k) {
    if (nodes_[k].queue.empty()) {
      continue;
    }
    if (winner < 0 ||
        nodes_[k].queue.front().frame.id <
            nodes_[static_cast<std::size_t>(winner)].queue.front().frame.id) {
      winner = static_cast<NodeId>(k);
    }
  }
  if (winner < 0) {
    return;
  }
  Node& node = nodes_[static_cast<std::size_t>(winner)];
  const Pending pending = node.queue.front();
  node.queue.pop_front();
  const SimTime duration = frame_time(pending.frame);
  busy_ = true;
  busy_time_ += duration;
  queue_.schedule_in(duration, [this, pending, winner] {
    busy_ = false;
    MessageStats& s = stats_[pending.frame.id];
    ++s.sent;
    const SimTime latency = queue_.now() - pending.queued_at;
    s.worst_latency = std::max(s.worst_latency, latency);
    s.total_latency += latency;
    // Transmit-complete on the sender, then deliver to every other node.
    for (const TxHandler& h :
         nodes_[static_cast<std::size_t>(winner)].tx_handlers) {
      h(pending.frame, queue_.now());
    }
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
      if (static_cast<NodeId>(k) == winner) {
        continue;
      }
      for (const RxHandler& h : nodes_[k].handlers) {
        h(pending.frame, queue_.now());
      }
    }
    // A handler may have sent synchronously (mailbox chaining on
    // transmit-complete) and already restarted arbitration.
    if (!busy_) {
      try_start();
    }
  });
}

}  // namespace aces::can
