#include "can/frame.h"

#include "support/check.h"

namespace aces::can {

std::uint16_t crc15(const std::vector<bool>& bits) {
  std::uint16_t crc = 0;
  for (const bool bit : bits) {
    const bool msb = ((crc >> 14) & 1u) != 0;
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (msb != bit) {
      crc ^= 0x4599;
    }
  }
  return crc;
}

std::vector<bool> stuffable_bits(const CanFrame& frame) {
  ACES_CHECK_MSG(!frame.fd,
                 "stuffable_bits serializes classic frames only; FD frames "
                 "go through fd_exact_wire_bits");
  ACES_CHECK_MSG(frame.id < (1u << (frame.extended ? 29 : 11)),
                 "identifier out of range for the frame format");
  ACES_CHECK_MSG(frame.dlc <= 8, "dlc is 0..8");
  std::vector<bool> bits;
  bits.push_back(false);  // SOF (dominant)
  if (!frame.extended) {
    for (int k = 10; k >= 0; --k) {
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(frame.rtr);  // RTR
    bits.push_back(false);      // IDE (standard)
    bits.push_back(false);      // r0
  } else {
    for (int k = 28; k >= 18; --k) {  // 11-bit base identifier
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(true);  // SRR (recessive)
    bits.push_back(true);  // IDE (extended)
    for (int k = 17; k >= 0; --k) {  // 18-bit identifier extension
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(frame.rtr);  // RTR
    bits.push_back(false);      // r1
    bits.push_back(false);      // r0
  }
  for (int k = 3; k >= 0; --k) {
    bits.push_back(((frame.dlc >> k) & 1u) != 0);
  }
  if (!frame.rtr) {  // remote frames carry no data field
    for (unsigned b = 0; b < frame.dlc; ++b) {
      for (int k = 7; k >= 0; --k) {
        bits.push_back(((frame.data[b] >> k) & 1u) != 0);
      }
    }
  }
  const std::uint16_t crc = crc15(bits);
  for (int k = 14; k >= 0; --k) {
    bits.push_back(((crc >> k) & 1u) != 0);
  }
  return bits;
}

unsigned exact_wire_bits(const CanFrame& frame) {
  const std::vector<bool> bits = stuffable_bits(frame);
  unsigned stuffed = 0;
  unsigned run = 0;
  bool last = false;
  bool have_last = false;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    bool b = bits[k];
    if (have_last && b == last) {
      ++run;
    } else {
      run = 1;
      last = b;
      have_last = true;
    }
    if (run == 5) {
      // A stuff bit of opposite polarity is inserted; it starts a new run
      // that the following data bit may extend.
      ++stuffed;
      last = !b;
      run = 1;
    }
  }
  return static_cast<unsigned>(bits.size()) + stuffed + 13;
}

FdWireBits fd_exact_wire_bits(const CanFrame& frame) {
  ACES_CHECK_MSG(frame.fd, "fd_exact_wire_bits needs an FD frame");
  ACES_CHECK_MSG(!frame.rtr, "CAN FD has no remote frames");
  ACES_CHECK_MSG(frame.id < (1u << (frame.extended ? 29 : 11)),
                 "identifier out of range for the frame format");
  const unsigned n = fd_payload_bytes(frame.dlc);  // checks dlc <= 15

  // Dynamically stuffed span: head (nominal rate, SOF..BRS) followed by
  // ESI + DLC + data (data rate when BRS is set). The rate switches at the
  // BRS bit, so a stuff bit inserted right after BRS already belongs to
  // the data phase.
  std::vector<bool> bits;
  bits.push_back(false);  // SOF (dominant)
  if (!frame.extended) {
    for (int k = 10; k >= 0; --k) {
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(false);  // RRS (dominant where classic RTR sits)
    bits.push_back(false);  // IDE (standard)
  } else {
    for (int k = 28; k >= 18; --k) {  // 11-bit base identifier
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(true);  // SRR (recessive)
    bits.push_back(true);  // IDE (extended)
    for (int k = 17; k >= 0; --k) {  // 18-bit identifier extension
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(false);  // RRS
  }
  bits.push_back(true);       // FDF/EDL (recessive marks the FD format)
  bits.push_back(false);      // res
  bits.push_back(frame.brs);  // BRS — last nominal-rate bit
  const std::size_t head_len = bits.size();
  bits.push_back(false);  // ESI (error active)
  for (int k = 3; k >= 0; --k) {
    bits.push_back(((frame.dlc >> k) & 1u) != 0);
  }
  for (unsigned b = 0; b < n; ++b) {
    for (int k = 7; k >= 0; --k) {
      bits.push_back(((frame.data[b] >> k) & 1u) != 0);
    }
  }

  unsigned head_stuffs = 0;
  unsigned data_stuffs = 0;
  unsigned run = 0;
  bool last = false;
  bool have_last = false;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    bool b = bits[k];
    if (have_last && b == last) {
      ++run;
    } else {
      run = 1;
      last = b;
      have_last = true;
    }
    if (run == 5) {
      // The stuff bit goes out between raw bits k and k+1: still nominal
      // only while it precedes the BRS sample point.
      if (k + 1 < head_len) {
        ++head_stuffs;
      } else {
        ++data_stuffs;
      }
      last = !b;
      run = 1;
    }
  }

  // CRC field: 4-bit stuff count + CRC-17 (n <= 16) or CRC-21, with a
  // fixed stuff bit before the first bit and after every 4th — its length
  // is constant, so no CRC value is needed for the wire length.
  const unsigned crc_field = n <= 16 ? 27u : 32u;

  FdWireBits w;
  w.nominal_bits = static_cast<unsigned>(head_len) + head_stuffs + 13;
  w.data_bits = static_cast<unsigned>(bits.size() - head_len) + data_stuffs +
                crc_field;
  return w;
}

}  // namespace aces::can
