#include "can/frame.h"

#include "support/check.h"

namespace aces::can {

std::uint16_t crc15(const std::vector<bool>& bits) {
  std::uint16_t crc = 0;
  for (const bool bit : bits) {
    const bool msb = ((crc >> 14) & 1u) != 0;
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (msb != bit) {
      crc ^= 0x4599;
    }
  }
  return crc;
}

std::vector<bool> stuffable_bits(const CanFrame& frame) {
  ACES_CHECK_MSG(frame.id < (1u << (frame.extended ? 29 : 11)),
                 "identifier out of range for the frame format");
  ACES_CHECK_MSG(frame.dlc <= 8, "dlc is 0..8");
  std::vector<bool> bits;
  bits.push_back(false);  // SOF (dominant)
  if (!frame.extended) {
    for (int k = 10; k >= 0; --k) {
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(frame.rtr);  // RTR
    bits.push_back(false);      // IDE (standard)
    bits.push_back(false);      // r0
  } else {
    for (int k = 28; k >= 18; --k) {  // 11-bit base identifier
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(true);  // SRR (recessive)
    bits.push_back(true);  // IDE (extended)
    for (int k = 17; k >= 0; --k) {  // 18-bit identifier extension
      bits.push_back(((frame.id >> k) & 1u) != 0);
    }
    bits.push_back(frame.rtr);  // RTR
    bits.push_back(false);      // r1
    bits.push_back(false);      // r0
  }
  for (int k = 3; k >= 0; --k) {
    bits.push_back(((frame.dlc >> k) & 1u) != 0);
  }
  if (!frame.rtr) {  // remote frames carry no data field
    for (unsigned b = 0; b < frame.dlc; ++b) {
      for (int k = 7; k >= 0; --k) {
        bits.push_back(((frame.data[b] >> k) & 1u) != 0);
      }
    }
  }
  const std::uint16_t crc = crc15(bits);
  for (int k = 14; k >= 0; --k) {
    bits.push_back(((crc >> k) & 1u) != 0);
  }
  return bits;
}

unsigned exact_wire_bits(const CanFrame& frame) {
  const std::vector<bool> bits = stuffable_bits(frame);
  unsigned stuffed = 0;
  unsigned run = 0;
  bool last = false;
  bool have_last = false;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    bool b = bits[k];
    if (have_last && b == last) {
      ++run;
    } else {
      run = 1;
      last = b;
      have_last = true;
    }
    if (run == 5) {
      // A stuff bit of opposite polarity is inserted; it starts a new run
      // that the following data bit may extend.
      ++stuffed;
      last = !b;
      run = 1;
    }
  }
  return static_cast<unsigned>(bits.size()) + stuffed + 13;
}

}  // namespace aces::can
