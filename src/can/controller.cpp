#include "can/controller.h"

#include "support/check.h"

namespace aces::can {

namespace {

[[nodiscard]] mem::MemResult reg_fault(mem::Fault kind) {
  mem::MemResult r;
  r.fault = kind;
  return r;
}

}  // namespace

CanController::CanController(CanBus& bus, std::string node_name, Config config)
    : name_("can:" + node_name), config_(config), bus_(bus) {
  ACES_CHECK_MSG(config_.rx_fifo_depth > 0, "RX FIFO needs at least one slot");
  node_ = bus_.attach_node(std::move(node_name));
  bus_.subscribe(node_,
                 [this](const CanFrame& f, sim::SimTime) { on_rx(f); });
  bus_.subscribe_tx(node_,
                    [this](const CanFrame& f, sim::SimTime) { on_tx_done(f); });
  bus_.subscribe_err(node_, [this](const CanBus::ErrorEvent& e,
                                   sim::SimTime) { on_err(e); });
  bus_.set_manual_bus_off_recovery(node_, config_.manual_bus_off_recovery);
}

void CanController::connect_irq(IrqLineFn raise, IrqLineFn clear) {
  irq_raise_ = std::move(raise);
  irq_clear_ = std::move(clear);
}

void CanController::connect_irq(sim::IrqSink& sink) {
  connect_irq([&sink](unsigned line) { sink.raise_irq(line); },
              [&sink](unsigned line) { sink.clear_irq(line); });
}

void CanController::raise_line(unsigned line) {
  ++stats_.irq_raises;
  if (irq_raise_) {
    irq_raise_(line);
  }
}

void CanController::on_rx(const CanFrame& frame) {
  if (frame.fd) {
    // Classic CAN 2.0 register model: like an FD-tolerant classic
    // controller, it ignores FD traffic (the RX registers cannot
    // represent DLC codes or payloads past 8 bytes).
    return;
  }
  if (rx_fifo_.size() >= config_.rx_fifo_depth) {
    ++stats_.frames_dropped;
    rx_overflowed_ = true;
    irq_status_ |= kIrqRxOvr;
    if ((ctrl_ & kCtrlRxie) != 0) {
      raise_line(config_.rx_line);
    }
    return;
  }
  rx_fifo_.push_back(frame);
  ++stats_.frames_received;
  irq_status_ |= kIrqRx;
  if ((ctrl_ & kCtrlRxie) != 0) {
    raise_line(config_.rx_line);
  }
}

void CanController::on_tx_done(const CanFrame&) {
  if (tx_in_flight_ > 0) {
    --tx_in_flight_;
  }
  ++stats_.frames_transmitted;
  irq_status_ |= kIrqTxDone;
  if ((ctrl_ & kCtrlTxie) != 0) {
    raise_line(config_.tx_line);
  }
}

void CanController::on_err(const CanBus::ErrorEvent& event) {
  if (event.kind == CanBus::ErrorEvent::Kind::tx_error) {
    ++stats_.bus_errors;
  } else {
    if (event.state == ErrorState::bus_off) {
      ++stats_.bus_off_entries;
    } else if (event.state == ErrorState::error_active &&
               last_state_ == ErrorState::bus_off) {
      ++stats_.recoveries;
    }
    last_state_ = event.state;
  }
  irq_status_ |= kIrqErr;
  if ((ctrl_ & kCtrlErrie) != 0) {
    raise_line(config_.err_line);
  }
}

std::uint32_t CanController::status_bits() const {
  std::uint32_t s = 0;
  if (!rx_fifo_.empty()) {
    s |= kStatusRxne;
  }
  if (tx_in_flight_ > 0) {
    s |= kStatusTxBusy;
  }
  if (rx_overflowed_) {
    s |= kStatusRxOvr;
  }
  const ErrorState es = bus_.error_state(node_);
  if (es == ErrorState::error_passive) {
    s |= kStatusEpass;
  } else if (es == ErrorState::bus_off) {
    s |= kStatusBoff;
  }
  return s;
}

std::uint32_t CanController::pack_id(const CanFrame& frame) {
  std::uint32_t v = frame.id;
  if (frame.extended) {
    v |= kIdExtended;
  }
  if (frame.rtr) {
    v |= kIdRtr;
  }
  return v;
}

std::uint32_t CanController::pack_data(const std::array<std::uint8_t, kFdMaxPayload>& data,
                                       unsigned word) {
  std::uint32_t v = 0;
  for (unsigned k = 0; k < 4; ++k) {
    v |= static_cast<std::uint32_t>(data[4 * word + k]) << (8 * k);
  }
  return v;
}

void CanController::unpack_data(std::array<std::uint8_t, kFdMaxPayload>& data,
                                unsigned word, std::uint32_t value) {
  for (unsigned k = 0; k < 4; ++k) {
    data[4 * word + k] = static_cast<std::uint8_t>(value >> (8 * k));
  }
}

mem::MemResult CanController::read(std::uint32_t addr, unsigned size,
                                   mem::Access kind, std::uint64_t) {
  if (size != 4 || kind == mem::Access::fetch) {
    // Word-register file; no code execution from a peripheral.
    return reg_fault(mem::Fault::misaligned);
  }
  mem::MemResult r;
  r.cycles = config_.access_cycles;
  switch (addr) {
    case kCtrl: r.value = ctrl_; break;
    case kStatus: r.value = status_bits(); break;
    case kTxId: r.value = pack_id(tx_frame_); break;
    case kTxDlc: r.value = tx_frame_.dlc; break;
    case kTxData0: r.value = pack_data(tx_frame_.data, 0); break;
    case kTxData1: r.value = pack_data(tx_frame_.data, 1); break;
    case kRxId:
      r.value = rx_fifo_.empty() ? 0 : pack_id(rx_fifo_.front());
      break;
    case kRxDlc:
      r.value = rx_fifo_.empty() ? 0 : rx_fifo_.front().dlc;
      break;
    case kRxData0:
      r.value = rx_fifo_.empty() ? 0 : pack_data(rx_fifo_.front().data, 0);
      break;
    case kRxData1:
      r.value = rx_fifo_.empty() ? 0 : pack_data(rx_fifo_.front().data, 1);
      break;
    case kIrq: r.value = irq_status_; break;
    case kErrCnt:
      r.value = bus_.tec(node_) | (static_cast<std::uint32_t>(
                                      bus_.rec(node_)) << 16);
      break;
    case kTxCmd:
    case kRxPop:
    case kIrqAck:
      r.value = 0;  // write-only registers read as zero
      break;
    default:
      return reg_fault(mem::Fault::unmapped);  // reserved offset
  }
  return r;
}

mem::MemResult CanController::write(std::uint32_t addr, unsigned size,
                                    std::uint32_t value, std::uint64_t) {
  if (size != 4) {
    return reg_fault(mem::Fault::misaligned);
  }
  mem::MemResult r;
  r.cycles = config_.access_cycles;
  switch (addr) {
    case kCtrl:
      ctrl_ = value & (kCtrlRxie | kCtrlTxie | kCtrlErrie);
      if ((value & kCtrlBor) != 0) {
        // Self-clearing command: software restarts a bus-off node, which
        // begins the 128x11-recessive-bit recovery sequence on the bus.
        bus_.request_recovery(node_);
      }
      break;
    case kTxId:
      tx_frame_.extended = (value & kIdExtended) != 0;
      tx_frame_.rtr = (value & kIdRtr) != 0;
      tx_frame_.id = value & (tx_frame_.extended ? 0x1FFF'FFFFu : 0x7FFu);
      break;
    case kTxDlc:
      tx_frame_.dlc = value > 8 ? 8 : value;
      break;
    case kTxData0:
      unpack_data(tx_frame_.data, 0, value);
      break;
    case kTxData1:
      unpack_data(tx_frame_.data, 1, value);
      break;
    case kTxCmd:
      if ((value & 1u) != 0) {
        ++tx_in_flight_;
        ++stats_.frames_queued;
        bus_.send(node_, tx_frame_);
      }
      break;
    case kRxPop:
      if ((value & 1u) != 0 && !rx_fifo_.empty()) {
        rx_fifo_.pop_front();
        if (rx_fifo_.empty()) {
          irq_status_ &= ~kIrqRx;
          if (irq_clear_) {
            irq_clear_(config_.rx_line);
          }
        } else if ((ctrl_ & kCtrlRxie) != 0) {
          // More traffic behind the popped frame: re-arm the line so a
          // one-frame-per-entry handler is re-entered.
          irq_status_ |= kIrqRx;
          raise_line(config_.rx_line);
        }
      }
      break;
    case kIrqAck:
      irq_status_ &= ~value;
      if ((value & kIrqRxOvr) != 0) {
        rx_overflowed_ = false;
      }
      break;
    case kStatus:
    case kRxId:
    case kRxDlc:
    case kRxData0:
    case kRxData1:
    case kIrq:
    case kErrCnt:
      break;  // read-only registers ignore writes
    default:
      return reg_fault(mem::Fault::unmapped);  // reserved offset
  }
  return r;
}

}  // namespace aces::can
