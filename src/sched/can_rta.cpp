#include "sched/can_rta.h"

#include <algorithm>

#include "can/frame.h"
#include "support/check.h"

namespace aces::sched {

using sim::SimTime;

namespace {

// One full fixed-point analysis pass. `t_error` > 0 adds Tindell's
// error-recovery term E(t) = (31*tau + max_j C_j) * ceil((t + tau) /
// t_error) to every busy window; 0 is the exact fault-free analysis.
// Priority on the wire: the exact arbitration dominance order, NOT the
// raw identifier — an extended frame's 29-bit id is numerically huge but
// its 11-bit base competes first, so a mixed-format set ordered by raw id
// would be unsound against the simulated bus.
[[nodiscard]] std::uint32_t wire_priority(const CanMessage& m) {
  // arbitration_key masks out-of-range bits, which would silently alias
  // distinct priorities — fatal in a safety analysis, so reject here.
  ACES_CHECK_MSG(m.id < (1u << (m.extended ? 29 : 11)),
                 "identifier out of range for the frame format");
  can::CanFrame f;
  f.id = m.id;
  f.extended = m.extended;
  return can::arbitration_key(f);
}

// Worst-case frame time on a bus with nominal bit time `tau` and FD
// data-phase bit time `tau_data` (== tau on a classic-only bus). FD frames
// split per phase; their worst-case closed forms (can::fd_worst_case_*)
// upper-bound the exact phase lengths the simulated bus prices.
[[nodiscard]] SimTime worst_frame_time(const CanMessage& m, SimTime tau,
                                       SimTime tau_data) {
  if (!m.fd) {
    return tau * can::worst_case_wire_bits(m.dlc, m.extended);
  }
  const SimTime td = m.brs ? tau_data : tau;
  return tau * can::fd_worst_case_nominal_bits(m.extended) +
         td * can::fd_worst_case_data_bits(m.dlc);
}

void analyze(const std::vector<CanMessage>& messages, SimTime tau,
             SimTime tau_data, SimTime t_error,
             std::vector<SimTime>& response, std::vector<bool>& ok_out) {
  const auto frame_time = [tau, tau_data](const CanMessage& m) {
    return worst_frame_time(m, tau, tau_data);
  };
  // Hoisted out of the fixed-point recurrences: per-message wire
  // priorities and frame times are loop invariants.
  std::vector<std::uint32_t> key(messages.size());
  std::vector<SimTime> c(messages.size());
  SimTime max_c = 0;
  for (std::size_t j = 0; j < messages.size(); ++j) {
    key[j] = wire_priority(messages[j]);
    c[j] = frame_time(messages[j]);
    max_c = std::max(max_c, c[j]);
  }
  // The analysis is only sound under unique priorities (the simulator
  // diagnoses the same condition as duplicate_id_conflicts); equal keys
  // would silently drop the twin's interference below.
  std::vector<std::uint32_t> sorted = key;
  std::sort(sorted.begin(), sorted.end());
  ACES_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "duplicate arbitration priority in the message set");
  const SimTime error_cost = 31 * tau + max_c;
  const auto error_term = [&](SimTime t) -> SimTime {
    if (t_error <= 0) {
      return 0;
    }
    return error_cost * ((t + tau + t_error - 1) / t_error);
  };

  for (std::size_t i = 0; i < messages.size(); ++i) {
    const CanMessage& m = messages[i];
    ACES_CHECK(m.period > 0);
    const SimTime cm = frame_time(m);
    const SimTime deadline = m.deadline > 0 ? m.deadline : m.period;

    // Non-preemptive blocking: the longest lower-priority frame that may
    // have just started.
    SimTime blocking = 0;
    for (std::size_t j = 0; j < messages.size(); ++j) {
      if (key[j] > key[i]) {
        blocking = std::max(blocking, c[j]);
      }
    }

    // Busy-period length at priority level m (includes m's own instances).
    SimTime busy = cm;
    bool truncated = false;
    for (int iter = 0; iter < 10'000; ++iter) {
      SimTime next = blocking + error_term(busy);
      for (std::size_t j = 0; j < messages.size(); ++j) {
        if (key[j] > key[i]) {
          continue;  // lower priority (only in the blocking term)
        }
        const SimTime activations =
            (busy + messages[j].jitter + messages[j].period - 1) /
            messages[j].period;
        next += activations * c[j];
      }
      if (next == busy) {
        break;
      }
      busy = next;
      if (busy > 100 * deadline) {
        // Overload escape: the busy period was cut short, so the instance
        // count derived from it may miss later (worse) instances — the
        // verdict below must not claim this message meets its deadline.
        truncated = true;
        break;
      }
    }
    // Instances released inside the level-i busy period: jitter widens
    // the release window (Davis et al., Q_m = ceil((t_m + J_m) / T_m)).
    const SimTime q_max = (busy + m.jitter + m.period - 1) / m.period;

    SimTime worst = 0;
    bool ok = !truncated;
    for (SimTime q = 0; q < std::max<SimTime>(q_max, 1); ++q) {
      // Queuing delay of instance q.
      SimTime w = blocking + q * cm;
      bool converged = false;
      for (int iter = 0; iter < 10'000; ++iter) {
        SimTime next = blocking + q * cm + error_term(w + cm);
        for (std::size_t j = 0; j < messages.size(); ++j) {
          if (j == i || key[j] >= key[i]) {
            continue;  // strictly higher priority interferes
          }
          const SimTime activations =
              (w + messages[j].jitter + tau + messages[j].period - 1) /
              messages[j].period;
          next += activations * c[j];
        }
        if (next == w) {
          converged = true;
          break;
        }
        w = next;
        if (m.jitter + w - q * m.period + cm > 100 * deadline) {
          break;
        }
      }
      const SimTime r = m.jitter + w - q * m.period + cm;
      worst = std::max(worst, r);
      ok = ok && converged;
    }
    response[i] = worst;
    ok_out[i] = ok && worst <= deadline;
  }
}

}  // namespace

CanRtaResult can_rta(const std::vector<CanMessage>& messages,
                     std::uint32_t bitrate_bps, const CanErrorModel& errors,
                     std::uint32_t data_bitrate_bps) {
  const SimTime tau = sim::kSecond / bitrate_bps;  // bit time
  // FD data-phase bit time; with no data rate the wire (and so the bound)
  // runs FD data phases at the nominal rate.
  const SimTime tau_data =
      data_bitrate_bps > 0 ? sim::kSecond / data_bitrate_bps : tau;
  CanRtaResult result;
  result.response_fault_free.assign(messages.size(), 0);
  result.response_faulted.assign(messages.size(), 0);
  result.message_ok.assign(messages.size(), false);

  double util = 0.0;
  for (const CanMessage& m : messages) {
    util += static_cast<double>(worst_frame_time(m, tau, tau_data)) /
            static_cast<double>(m.period);
  }
  result.bus_utilization = util;

  std::vector<bool> ok_fault_free(messages.size(), false);
  analyze(messages, tau, tau_data, 0, result.response_fault_free,
          ok_fault_free);
  if (errors.min_interarrival > 0) {
    analyze(messages, tau, tau_data, errors.min_interarrival,
            result.response_faulted, result.message_ok);
  } else {
    result.response_faulted = result.response_fault_free;
    result.message_ok = ok_fault_free;
  }

  // The operative bound (and verdict) includes the fault hypothesis when
  // one is given.
  result.response = errors.min_interarrival > 0 ? result.response_faulted
                                                : result.response_fault_free;
  result.schedulable = true;
  for (const bool ok : result.message_ok) {
    result.schedulable = result.schedulable && ok;
  }
  return result;
}

namespace {

// One hop of the holistic composition: inherit `inherited` ns of upstream
// jitter (accumulated bound + gateway latency), run the per-bus analysis,
// and return the new cumulative bound — can_rta's response already includes
// the jitter term, so it *is* end-to-end from the source release.
[[nodiscard]] SimTime hop_bound(const PathHop& hop, SimTime inherited,
                                const CanErrorModel& errors, bool& ok) {
  std::vector<CanMessage> msgs = hop.messages;
  CanMessage& m = msgs[hop.message];
  const SimTime hop_deadline = m.deadline > 0 ? m.deadline : m.period;
  m.jitter += inherited;
  // Judge this hop on queue-to-delivery (w + C <= hop deadline): the
  // inherited jitter is upstream latency, not a property of this bus, so
  // the deadline check — and the overload escape scaled from it — must not
  // be tightened by it.
  m.deadline = m.jitter + hop_deadline;
  const CanRtaResult r =
      can_rta(msgs, hop.bitrate_bps, errors, hop.data_bitrate_bps);
  ok = ok && r.message_ok[hop.message];
  return r.response[hop.message];
}

}  // namespace

PathRtaResult path_rta(const std::vector<PathHop>& hops, SimTime deadline) {
  ACES_CHECK_MSG(!hops.empty(), "path_rta needs at least one hop");
  PathRtaResult out;
  SimTime cum_ff = 0;
  SimTime cum_op = 0;  // operative: faulted wherever a hop has a model
  bool ok_ff = true;
  bool ok_op = true;
  for (const PathHop& hop : hops) {
    if (hop.analysis) {
      // Fabric plugin: it owns the hop-local bound and verdict; the
      // holistic composition (inherited bound + gateway latency charged as
      // release jitter) is identical to the CAN hops'.
      const HopBound ff =
          hop.analysis(hop, cum_ff + hop.gateway_latency, false);
      ok_ff = ok_ff && ff.ok;
      cum_ff = ff.response;
      const HopBound op =
          hop.analysis(hop, cum_op + hop.gateway_latency, true);
      ok_op = ok_op && op.ok;
      cum_op = op.response;
    } else {
      ACES_CHECK_MSG(hop.message < hop.messages.size(),
                     "path_rta hop message index out of range");
      cum_ff = hop_bound(hop, cum_ff + hop.gateway_latency, CanErrorModel{},
                         ok_ff);
      cum_op = hop_bound(hop, cum_op + hop.gateway_latency, hop.errors,
                         ok_op);
    }
    out.hop_response.push_back(cum_op);
  }
  out.response_fault_free = cum_ff;
  out.response_faulted = cum_op;
  out.response = cum_op;
  const PathHop& lh = hops.back();
  SimTime e2e_deadline = deadline;
  if (e2e_deadline <= 0) {
    if (lh.analysis) {
      ACES_CHECK_MSG(lh.hop_deadline > 0,
                     "path_rta: a plugin hop ending the path needs "
                     "hop_deadline (or an explicit end-to-end deadline)");
      e2e_deadline = lh.hop_deadline;
    } else {
      const CanMessage& last = lh.messages[lh.message];
      e2e_deadline = last.deadline > 0 ? last.deadline : last.period;
    }
  }
  out.schedulable = ok_op && out.response <= e2e_deadline;
  out.schedulable_fault_free = ok_ff && cum_ff <= e2e_deadline;
  return out;
}

PathHop make_hop(std::vector<CanMessage> messages, std::uint32_t id,
                 std::uint32_t bitrate_bps, SimTime gateway_latency,
                 const CanErrorModel& errors, int bus,
                 std::uint32_t data_bitrate_bps) {
  PathHop hop;
  hop.messages = std::move(messages);
  hop.bitrate_bps = bitrate_bps;
  hop.data_bitrate_bps = data_bitrate_bps;
  hop.gateway_latency = gateway_latency;
  hop.errors = errors;
  hop.bus = bus;
  std::size_t found = 0;
  for (std::size_t k = 0; k < hop.messages.size(); ++k) {
    if (hop.messages[k].id == id) {
      hop.message = k;
      ++found;
    }
  }
  ACES_CHECK_MSG(found == 1,
                 "make_hop: the analyzed identifier must appear exactly "
                 "once in the hop's message set");
  return hop;
}

}  // namespace aces::sched
