#include "sched/can_rta.h"

#include <algorithm>

#include "can/frame.h"
#include "support/check.h"

namespace aces::sched {

using sim::SimTime;

CanRtaResult can_rta(const std::vector<CanMessage>& messages,
                     std::uint32_t bitrate_bps) {
  const SimTime tau = sim::kSecond / bitrate_bps;  // bit time
  CanRtaResult result;
  result.response.assign(messages.size(), 0);
  result.message_ok.assign(messages.size(), false);
  result.schedulable = true;

  const auto frame_time = [tau](const CanMessage& m) {
    return tau * can::worst_case_wire_bits(m.dlc);
  };

  double util = 0.0;
  for (const CanMessage& m : messages) {
    util += static_cast<double>(frame_time(m)) /
            static_cast<double>(m.period);
  }
  result.bus_utilization = util;

  for (std::size_t i = 0; i < messages.size(); ++i) {
    const CanMessage& m = messages[i];
    ACES_CHECK(m.period > 0);
    const SimTime cm = frame_time(m);
    const SimTime deadline = m.deadline > 0 ? m.deadline : m.period;

    // Non-preemptive blocking: the longest lower-priority frame that may
    // have just started.
    SimTime blocking = 0;
    for (const CanMessage& o : messages) {
      if (o.id > m.id) {
        blocking = std::max(blocking, frame_time(o));
      }
    }

    // Busy-period length at priority level m (includes m's own instances).
    SimTime busy = cm;
    for (int iter = 0; iter < 10'000; ++iter) {
      SimTime next = blocking;
      for (const CanMessage& o : messages) {
        if (o.id > m.id) {
          continue;  // lower priority (only in the blocking term)
        }
        const SimTime activations =
            (busy + o.jitter + o.period - 1) / o.period;
        next += activations * frame_time(o);
      }
      if (next == busy) {
        break;
      }
      busy = next;
      if (busy > 100 * deadline) {
        break;  // overload; instance bound below still terminates
      }
    }
    const SimTime q_max = (busy + m.period - 1) / m.period;

    SimTime worst = 0;
    bool ok = true;
    for (SimTime q = 0; q < std::max<SimTime>(q_max, 1); ++q) {
      // Queuing delay of instance q.
      SimTime w = blocking + q * cm;
      bool converged = false;
      for (int iter = 0; iter < 10'000; ++iter) {
        SimTime next = blocking + q * cm;
        for (const CanMessage& o : messages) {
          if (&o == &m || o.id >= m.id) {
            continue;  // strictly higher priority interferes
          }
          const SimTime activations =
              (w + o.jitter + tau + o.period - 1) / o.period;
          next += activations * frame_time(o);
        }
        if (next == w) {
          converged = true;
          break;
        }
        w = next;
        if (m.jitter + w - q * m.period + cm > 100 * deadline) {
          break;
        }
      }
      const SimTime response = m.jitter + w - q * m.period + cm;
      worst = std::max(worst, response);
      ok = ok && converged;
    }
    result.response[i] = worst;
    result.message_ok[i] = ok && worst <= deadline;
    result.schedulable = result.schedulable && result.message_ok[i];
  }
  return result;
}

}  // namespace aces::sched
