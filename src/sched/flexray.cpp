#include "sched/flexray.h"

#include <algorithm>

#include "support/check.h"

namespace aces::sched {

const FlexrayAssignment& FlexraySchedule::of(int frame) const {
  for (const FlexrayAssignment& a : assignments) {
    if (a.frame == frame) {
      return a;
    }
  }
  ACES_CHECK_MSG(false, "frame has no assignment");
  return assignments.front();  // unreachable
}

FlexraySchedule build_static_schedule(
    const FlexrayConfig& config, const std::vector<FlexrayFrame>& frames) {
  ACES_CHECK(config.static_slots >= 1);
  ACES_CHECK(config.slot_length * config.static_slots <= config.cycle_length);

  FlexraySchedule schedule;
  // Existing occupancy: per slot, list of (base, repetition).
  struct Occupied {
    unsigned base;
    unsigned rep;
  };
  std::vector<std::vector<Occupied>> slots(config.static_slots);

  // Assign the most frequent frames first (smallest repetition).
  std::vector<int> order;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    order.push_back(static_cast<int>(k));
  }
  const auto repetition_of = [&config](const FlexrayFrame& f) {
    unsigned rep = 1;
    while (rep < 64 &&
           static_cast<sim::SimTime>(rep) * config.cycle_length < f.period) {
      rep *= 2;
    }
    return rep;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return repetition_of(frames[static_cast<std::size_t>(a)]) <
           repetition_of(frames[static_cast<std::size_t>(b)]);
  });

  const auto collides = [](const Occupied& o, unsigned base, unsigned rep) {
    const unsigned m = std::min(o.rep, rep);
    return (o.base % m) == (base % m);
  };

  double used_instances = 0.0;
  for (const int fi : order) {
    const FlexrayFrame& f = frames[static_cast<std::size_t>(fi)];
    const unsigned rep = repetition_of(f);
    bool placed = false;
    for (unsigned s = 0; s < config.static_slots && !placed; ++s) {
      for (unsigned base = 0; base < rep && !placed; ++base) {
        bool free = true;
        for (const Occupied& o : slots[s]) {
          if (collides(o, base, rep)) {
            free = false;
            break;
          }
        }
        if (!free) {
          continue;
        }
        slots[s].push_back(Occupied{base, rep});
        FlexrayAssignment a;
        a.frame = fi;
        a.slot = s;
        a.base_cycle = base;
        a.repetition = rep;
        // Worst case: data ready just after its slot passed -> wait a full
        // repetition period, then until the slot's end.
        a.worst_latency =
            static_cast<sim::SimTime>(rep) * config.cycle_length +
            static_cast<sim::SimTime>(s + 1) * config.slot_length;
        schedule.assignments.push_back(a);
        used_instances += 1.0 / rep;
        placed = true;
      }
    }
    if (!placed) {
      schedule.feasible = false;
      return schedule;
    }
  }
  schedule.feasible = true;
  schedule.static_utilization =
      used_instances / static_cast<double>(config.static_slots);
  return schedule;
}

// ----- dynamic-segment path_rta plugin ---------------------------------------

PathHop flexray_dynamic_hop(const FlexrayDynHopParams& params,
                            sim::SimTime gateway_latency, int bus) {
  ACES_CHECK(params.cycle_length > 0);
  ACES_CHECK(params.minislot > 0);
  ACES_CHECK(params.minislots > 0);
  ACES_CHECK(params.slot_minislots > 0);
  ACES_CHECK_MSG(params.static_segment +
                         static_cast<sim::SimTime>(params.minislots) *
                             params.minislot <=
                     params.cycle_length,
                 "dynamic segment exceeds the communication cycle");
  ACES_CHECK_MSG(params.deadline > 0,
                 "the dynamic-segment hop needs a per-hop deadline");
  PathHop hop;
  hop.gateway_latency = gateway_latency;
  hop.bus = bus;
  hop.hop_deadline = params.deadline;
  hop.analysis = [params](const PathHop& h, sim::SimTime inherited,
                          bool /*faulted*/) {
    // No error model on the FlexRay hop: the fault-free and operative
    // passes see the same bound.
    HopBound b;
    const unsigned need = params.higher_prio_minislots + params.slot_minislots;
    // Guaranteed transmission requires the worst-case run-up plus the
    // frame's own occupancy to fit the per-cycle budget; otherwise the
    // frame can be starved indefinitely by the pLatestTx cutoff.
    const bool feasible = need <= params.minislots;
    const sim::SimTime local =
        params.cycle_length + params.static_segment +
        static_cast<sim::SimTime>(need) * params.minislot;
    b.response = inherited + local;
    b.ok = feasible && local <= h.hop_deadline;
    return b;
  };
  return hop;
}

}  // namespace aces::sched
