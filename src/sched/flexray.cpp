#include "sched/flexray.h"

#include <algorithm>

#include "support/check.h"

namespace aces::sched {

const FlexrayAssignment& FlexraySchedule::of(int frame) const {
  for (const FlexrayAssignment& a : assignments) {
    if (a.frame == frame) {
      return a;
    }
  }
  ACES_CHECK_MSG(false, "frame has no assignment");
  return assignments.front();  // unreachable
}

FlexraySchedule build_static_schedule(
    const FlexrayConfig& config, const std::vector<FlexrayFrame>& frames) {
  ACES_CHECK(config.static_slots >= 1);
  ACES_CHECK(config.slot_length * config.static_slots <= config.cycle_length);

  FlexraySchedule schedule;
  // Existing occupancy: per slot, list of (base, repetition).
  struct Occupied {
    unsigned base;
    unsigned rep;
  };
  std::vector<std::vector<Occupied>> slots(config.static_slots);

  // Assign the most frequent frames first (smallest repetition).
  std::vector<int> order;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    order.push_back(static_cast<int>(k));
  }
  const auto repetition_of = [&config](const FlexrayFrame& f) {
    unsigned rep = 1;
    while (rep < 64 &&
           static_cast<sim::SimTime>(rep) * config.cycle_length < f.period) {
      rep *= 2;
    }
    return rep;
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return repetition_of(frames[static_cast<std::size_t>(a)]) <
           repetition_of(frames[static_cast<std::size_t>(b)]);
  });

  const auto collides = [](const Occupied& o, unsigned base, unsigned rep) {
    const unsigned m = std::min(o.rep, rep);
    return (o.base % m) == (base % m);
  };

  double used_instances = 0.0;
  for (const int fi : order) {
    const FlexrayFrame& f = frames[static_cast<std::size_t>(fi)];
    const unsigned rep = repetition_of(f);
    bool placed = false;
    for (unsigned s = 0; s < config.static_slots && !placed; ++s) {
      for (unsigned base = 0; base < rep && !placed; ++base) {
        bool free = true;
        for (const Occupied& o : slots[s]) {
          if (collides(o, base, rep)) {
            free = false;
            break;
          }
        }
        if (!free) {
          continue;
        }
        slots[s].push_back(Occupied{base, rep});
        FlexrayAssignment a;
        a.frame = fi;
        a.slot = s;
        a.base_cycle = base;
        a.repetition = rep;
        // Worst case: data ready just after its slot passed -> wait a full
        // repetition period, then until the slot's end.
        a.worst_latency =
            static_cast<sim::SimTime>(rep) * config.cycle_length +
            static_cast<sim::SimTime>(s + 1) * config.slot_length;
        schedule.assignments.push_back(a);
        used_instances += 1.0 / rep;
        placed = true;
      }
    }
    if (!placed) {
      schedule.feasible = false;
      return schedule;
    }
  }
  schedule.feasible = true;
  schedule.static_utilization =
      used_instances / static_cast<double>(config.static_slots);
  return schedule;
}

// ----- FlexrayStaticDriver ---------------------------------------------------

FlexrayStaticDriver::FlexrayStaticDriver(sim::EventQueue& queue,
                                         FlexrayConfig config,
                                         std::vector<FlexrayFrame> frames,
                                         FlexraySchedule schedule)
    : queue_(queue),
      config_(config),
      frames_(std::move(frames)),
      schedule_(std::move(schedule)) {
  ACES_CHECK_MSG(schedule_.feasible,
                 "cannot play an infeasible FlexRay schedule");
  for (const FlexrayAssignment& a : schedule_.assignments) {
    ACES_CHECK_MSG(a.frame >= 0 &&
                       static_cast<std::size_t>(a.frame) < frames_.size(),
                   "schedule references a frame outside the given set");
    ACES_CHECK_MSG(a.repetition >= 1 && a.base_cycle < a.repetition,
                   "assignment '" +
                       frames_[static_cast<std::size_t>(a.frame)].name +
                       "' has an invalid (base, repetition) pattern");
    ACES_CHECK_MSG(a.slot < config_.static_slots,
                   "assignment '" +
                       frames_[static_cast<std::size_t>(a.frame)].name +
                       "' is placed outside the static segment");
  }
}

void FlexrayStaticDriver::start(SlotFn on_slot) {
  ACES_CHECK_MSG(!on_slot_, "FlexrayStaticDriver already started");
  ACES_CHECK_MSG(static_cast<bool>(on_slot), "start() needs a slot callback");
  on_slot_ = std::move(on_slot);
  arm_cycle(queue_.now());
}

void FlexrayStaticDriver::arm_cycle(sim::SimTime cycle_start) {
  for (const FlexrayAssignment& a : schedule_.assignments) {
    if (cycle_ % a.repetition != a.base_cycle) {
      continue;
    }
    const sim::SimTime slot_start =
        cycle_start + static_cast<sim::SimTime>(a.slot) * config_.slot_length;
    queue_.schedule_at(slot_start, [this, &a, slot_start] {
      ++slots_played_;
      on_slot_(frames_[static_cast<std::size_t>(a.frame)], a, slot_start);
    });
  }
  queue_.schedule_at(cycle_start + config_.cycle_length, [this, cycle_start] {
    cycle_ = (cycle_ + 1) % 64;
    arm_cycle(cycle_start + config_.cycle_length);
  });
}

}  // namespace aces::sched
