#include "sched/rta.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace aces::sched {

using sim::SimTime;

void apply_pcp_blocking(std::vector<RtaTask>& tasks,
                        const std::vector<CriticalSection>& sections) {
  // Ceiling of each resource = max priority among tasks that lock it.
  std::vector<int> ceiling;
  for (const CriticalSection& cs : sections) {
    if (cs.resource >= static_cast<int>(ceiling.size())) {
      ceiling.resize(static_cast<std::size_t>(cs.resource) + 1, -1);
    }
    ceiling[static_cast<std::size_t>(cs.resource)] =
        std::max(ceiling[static_cast<std::size_t>(cs.resource)],
                 tasks[static_cast<std::size_t>(cs.task)].priority);
  }
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    SimTime b = 0;
    for (const CriticalSection& cs : sections) {
      const RtaTask& lower = tasks[static_cast<std::size_t>(cs.task)];
      if (lower.priority < tasks[i].priority &&
          ceiling[static_cast<std::size_t>(cs.resource)] >=
              tasks[i].priority) {
        b = std::max(b, cs.length);
      }
    }
    tasks[i].blocking = b;
  }
}

RtaResult response_time_analysis(const std::vector<RtaTask>& tasks) {
  RtaResult result;
  result.response.assign(tasks.size(), 0);
  result.task_ok.assign(tasks.size(), false);
  result.schedulable = true;

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const RtaTask& t = tasks[i];
    ACES_CHECK_MSG(t.period > 0, "tasks need a period for RTA");
    const SimTime deadline = t.deadline > 0 ? t.deadline : t.period;
    SimTime r = t.wcet + t.blocking;
    bool converged = false;
    // The recurrence grows monotonically; abort once past the deadline.
    for (int iter = 0; iter < 10'000; ++iter) {
      SimTime next = t.wcet + t.blocking;
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (j == i || tasks[j].priority <= t.priority) {
          continue;
        }
        const SimTime interval = r + tasks[j].jitter;
        const SimTime activations =
            (interval + tasks[j].period - 1) / tasks[j].period;
        next += activations * tasks[j].wcet;
      }
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r + t.jitter > deadline) {
        break;
      }
    }
    const SimTime response = r + t.jitter;
    result.response[i] = response;
    result.task_ok[i] = converged && response <= deadline;
    result.schedulable = result.schedulable && result.task_ok[i];
  }
  return result;
}

double utilization(const std::vector<RtaTask>& tasks) {
  double u = 0.0;
  for (const RtaTask& t : tasks) {
    u += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  return u;
}

double liu_layland_bound(int n) {
  ACES_CHECK(n >= 1);
  return n * (std::pow(2.0, 1.0 / n) - 1.0);
}

}  // namespace aces::sched
