// Fixed-priority response-time analysis for OSEK-like task sets.
//
// The classic recurrence (Joseph & Pandya; Audsley et al.):
//   R_i = C_i + B_i + sum_{j in hp(i)} ceil((R_i + J_j) / T_j) * C_j
// iterated to a fixed point, with B_i the immediate-ceiling blocking bound:
//   B_i = max { cs(j, r) : prio(j) < prio(i) <= ceiling(r) }.
// The simulated kernel (rtos/) must never observe a response time above
// these bounds — the property bench_osek_sched and the tests check.
#ifndef ACES_SCHED_RTA_H
#define ACES_SCHED_RTA_H

#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace aces::sched {

struct RtaTask {
  std::string name;
  sim::SimTime wcet = 0;      // C
  sim::SimTime period = 0;    // T (also the activation jitter-free period)
  sim::SimTime deadline = 0;  // D (0 means implicit: D = T)
  int priority = 0;           // larger = more urgent
  sim::SimTime jitter = 0;    // release jitter J
  sim::SimTime blocking = 0;  // B (from pcp_blocking or user-provided)
};

// One critical section: `task` holds `resource` for up to `length`.
struct CriticalSection {
  int task = 0;  // index into the task vector
  int resource = 0;
  sim::SimTime length = 0;
};

struct RtaResult {
  bool schedulable = false;
  std::vector<sim::SimTime> response;  // worst-case response per task
  std::vector<bool> task_ok;
};

// Fills RtaTask::blocking for every task from the critical-section table
// under the immediate ceiling protocol.
void apply_pcp_blocking(std::vector<RtaTask>& tasks,
                        const std::vector<CriticalSection>& sections);

[[nodiscard]] RtaResult response_time_analysis(
    const std::vector<RtaTask>& tasks);

[[nodiscard]] double utilization(const std::vector<RtaTask>& tasks);

// Liu & Layland rate-monotonic utilization bound for n tasks.
[[nodiscard]] double liu_layland_bound(int n);

}  // namespace aces::sched

#endif  // ACES_SCHED_RTA_H
