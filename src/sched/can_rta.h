// Worst-case response-time analysis for CAN messages, with and without
// transmission errors.
//
// Implements the revised analysis of Davis, Burns, Bril & Lukkien
// ("Controller Area Network (CAN) schedulability analysis: Refuted,
// revisited and revised", RTS 2007): non-preemptive fixed-priority
// scheduling with the priority given by the identifier, including the
// busy-period extension that examines multiple instances when a message's
// response time can exceed its period. Frame times use the worst-case
// stuffed length from can/frame.h, so the simulated bus (can/bus.h) can
// never exceed these bounds — the property bench_can_rta sweeps.
//
// Fault-aware bounds follow Tindell's classic error-recovery term: if bit
// errors strike the bus at most once every T_error, a busy window of
// length t suffers at most ceil((t + tau_bit) / T_error) errors, and each
// costs at most the 31-bit error-frame recovery overhead plus one full
// retransmission of the longest frame:
//
//   E(t) = (31 * tau_bit + max_j C_j) * ceil((t + tau_bit) / T_error)
//
// The simulated fault model (CanBus::BitErrorModel + error state machine)
// is strictly cheaper per error — its error frames are at most 25 bit
// times and the aborted attempt never exceeds one frame — so the faulted
// bound dominates the simulation whenever injected errors respect
// T_error; tests/can_fault_test.cpp asserts exactly that, differentially.
#ifndef ACES_SCHED_CAN_RTA_H
#define ACES_SCHED_CAN_RTA_H

#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace aces::sched {

struct CanMessage {
  std::string name;
  std::uint32_t id = 0;       // priority: exact wire arbitration order
                              // (can::arbitration_key), so a standard id
                              // outranks an extended one sharing its base
  unsigned dlc = 8;           // classic: 0..8 bytes; FD: DLC code 0..15
  sim::SimTime period = 0;    // T
  sim::SimTime deadline = 0;  // D (0: implicit = T)
  sim::SimTime jitter = 0;    // queuing jitter J
  bool extended = false;      // 29-bit identifier frame format
  bool fd = false;            // CAN FD frame: worst-case length splits into
                              // nominal + data phases (can::fd_worst_case_*)
  bool brs = true;            // FD only: data phase at the data bit rate
                              // (matches can::CanFrame::brs' default)
};

// Fault hypothesis for the error-recovery term. Disabled (the exact
// fault-free analysis) when min_interarrival == 0.
struct CanErrorModel {
  sim::SimTime min_interarrival = 0;  // T_error: min gap between bit errors
};

struct CanRtaResult {
  bool schedulable = false;
  // Operative worst-case queue-to-delivery bounds: faulted when an error
  // model is given, identical to response_fault_free otherwise.
  std::vector<sim::SimTime> response;
  std::vector<sim::SimTime> response_fault_free;  // E(t) term off
  std::vector<sim::SimTime> response_faulted;     // E(t) term on (== fault
                                                  // free when no model)
  std::vector<bool> message_ok;
  double bus_utilization = 0.0;
};

// `data_bitrate_bps` > 0 prices FD messages' data phase at that rate
// (matching a can::CanBus built with the same pair); FD messages on a bus
// with no data rate run both phases at the nominal rate, like the wire.
[[nodiscard]] CanRtaResult can_rta(const std::vector<CanMessage>& messages,
                                   std::uint32_t bitrate_bps,
                                   const CanErrorModel& errors = {},
                                   std::uint32_t data_bitrate_bps = 0);

// ----- end-to-end analysis across gateway hops -------------------------------
//
// A message routed through store-and-forward gateways (net::GatewayNode)
// crosses several buses; its worst-case end-to-end latency is the holistic
// composition (Tindell & Clark): the response bound of hop k, plus the
// gateway forwarding latency, becomes the *release jitter* of the message
// on hop k+1, so the downstream per-bus analysis charges every queuing
// effect of the upstream variability. Each hop's bound is the full can_rta
// of that bus (blocking + interference + optional Tindell error term), so
// the gateway queuing delay — waiting behind the egress bus's own traffic —
// is exactly the w-term of the downstream analysis.

struct PathHop;

// Fabric-specific per-hop analysis plugin. Receives the hop, the
// accumulated upstream bound + gateway latency (`inherited`, charged as
// release jitter), and whether the hop's fault hypothesis applies
// (`faulted`; the fault-free pass always runs with false). Returns the new
// cumulative end-to-end bound — i.e. inherited + this hop's local
// queue-to-delivery bound — and whether the hop meets its own deadline. A
// null plugin means the CAN busy-period analysis below (classic, or FD
// dual-rate when the hop carries a data bit rate).
struct HopBound {
  sim::SimTime response = 0;  // cumulative bound including `inherited`
  bool ok = true;             // hop-local deadline + feasibility verdict
};
using HopAnalysis =
    std::function<HopBound(const PathHop&, sim::SimTime inherited,
                           bool faulted)>;

struct PathHop {
  // The complete message set competing on this hop's bus. The analyzed
  // message's jitter field is *added to* by the accumulated upstream bound;
  // other routed messages in the set must already carry their own inherited
  // jitter (their upstream bound + gateway latency) for the interference
  // terms to be sound. Unused (may be empty) when `analysis` is set to a
  // non-CAN fabric plugin.
  std::vector<CanMessage> messages;
  std::size_t message = 0;  // index of the analyzed message in `messages`
  std::uint32_t bitrate_bps = 0;
  std::uint32_t data_bitrate_bps = 0;  // FD data-phase rate (0: classic bus)
  CanErrorModel errors;               // this hop's fault hypothesis
  sim::SimTime gateway_latency = 0;   // store-and-forward delay charged on
                                      // entry to this hop (0 for the source)
  // Opaque caller tag identifying which physical bus this hop crosses
  // (e.g. a net::BusId). The analysis ignores it; cross-layer tooling —
  // the campaign engine matching per-bus fault plans onto hops — keys on
  // it. -1 = untagged.
  int bus = -1;
  // Fabric plugin (see HopAnalysis). Null: the CAN analysis over
  // `messages`, which keeps every pre-plugin path_rta result unchanged.
  HopAnalysis analysis;
  // Plugin hops only: the hop-local queue-to-delivery deadline (CAN hops
  // read the analyzed message's deadline/period instead). Must be > 0 when
  // a plugin hop ends the path and no explicit end-to-end deadline is
  // passed to path_rta.
  sim::SimTime hop_deadline = 0;
};

// Builds one PathHop, locating the analyzed message by identifier (checked:
// the id must be present in `messages` exactly once).
[[nodiscard]] PathHop make_hop(std::vector<CanMessage> messages,
                               std::uint32_t id, std::uint32_t bitrate_bps,
                               sim::SimTime gateway_latency = 0,
                               const CanErrorModel& errors = {},
                               int bus = -1,
                               std::uint32_t data_bitrate_bps = 0);

struct PathRtaResult {
  // Operative verdict (fault hypotheses applied where hops declare them)
  // and the fault-free verdict alongside it — a path can be schedulable on
  // a clean network yet not under the error model.
  bool schedulable = false;
  bool schedulable_fault_free = false;
  // Operative end-to-end bound, from the source-bus queue instant to
  // delivery on the final bus: faulted wherever a hop declares an error
  // model, identical to response_fault_free otherwise.
  sim::SimTime response = 0;
  sim::SimTime response_fault_free = 0;
  sim::SimTime response_faulted = 0;
  // Cumulative operative bound after each hop (last == response).
  std::vector<sim::SimTime> hop_response;
};

// `deadline` is the end-to-end deadline; 0 uses the analyzed message's
// deadline (or period) on the final hop. Per-hop schedulability is judged
// on queue-to-delivery against that hop's own deadline/period.
[[nodiscard]] PathRtaResult path_rta(const std::vector<PathHop>& hops,
                                     sim::SimTime deadline = 0);

}  // namespace aces::sched

#endif  // ACES_SCHED_CAN_RTA_H
