// Worst-case response-time analysis for CAN messages.
//
// Implements the revised analysis of Davis, Burns, Bril & Lukkien
// ("Controller Area Network (CAN) schedulability analysis: Refuted,
// revisited and revised", RTS 2007): non-preemptive fixed-priority
// scheduling with the priority given by the identifier, including the
// busy-period extension that examines multiple instances when a message's
// response time can exceed its period. Frame times use the worst-case
// stuffed length from can/frame.h, so the simulated bus (can/bus.h) can
// never exceed these bounds — the property bench_can_rta sweeps.
#ifndef ACES_SCHED_CAN_RTA_H
#define ACES_SCHED_CAN_RTA_H

#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace aces::sched {

struct CanMessage {
  std::string name;
  std::uint32_t id = 0;       // priority: lower wins
  unsigned dlc = 8;
  sim::SimTime period = 0;    // T
  sim::SimTime deadline = 0;  // D (0: implicit = T)
  sim::SimTime jitter = 0;    // queuing jitter J
};

struct CanRtaResult {
  bool schedulable = false;
  std::vector<sim::SimTime> response;  // worst-case queue-to-delivery
  std::vector<bool> message_ok;
  double bus_utilization = 0.0;
};

[[nodiscard]] CanRtaResult can_rta(const std::vector<CanMessage>& messages,
                                   std::uint32_t bitrate_bps);

}  // namespace aces::sched

#endif  // ACES_SCHED_CAN_RTA_H
