// FlexRay static-segment schedule construction (extension experiment E12).
//
// The static segment is TDMA: each communication cycle contains a fixed
// number of equal static slots; a frame is assigned a (slot, base cycle,
// repetition) triple where repetition is a power of two up to 64 — the
// frame is sent in its slot whenever cycle % repetition == base. Two frames
// may share a slot iff their (base, repetition) patterns never collide.
// This is the deterministic counterpart the industry moved to for
// safety-critical traffic; the bench compares its latency/utilization
// against CAN for the same message set.
#ifndef ACES_SCHED_FLEXRAY_H
#define ACES_SCHED_FLEXRAY_H

#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace aces::sched {

struct FlexrayConfig {
  sim::SimTime cycle_length = 5 * sim::kMillisecond;
  unsigned static_slots = 30;
  sim::SimTime slot_length = 100 * sim::kMicrosecond;  // <= cycle/slots
};

struct FlexrayFrame {
  std::string name;
  int node = 0;
  // Desired period; rounded up to cycle * 2^k (k in 0..6).
  sim::SimTime period = 0;
};

struct FlexrayAssignment {
  int frame = -1;
  unsigned slot = 0;
  unsigned base_cycle = 0;
  unsigned repetition = 1;
  sim::SimTime worst_latency = 0;  // queue-at-worst-moment to slot end
};

struct FlexraySchedule {
  bool feasible = false;
  std::vector<FlexrayAssignment> assignments;
  double static_utilization = 0.0;  // fraction of slot-instances used

  [[nodiscard]] const FlexrayAssignment& of(int frame) const;
};

[[nodiscard]] FlexraySchedule build_static_schedule(
    const FlexrayConfig& config, const std::vector<FlexrayFrame>& frames);

}  // namespace aces::sched

#endif  // ACES_SCHED_FLEXRAY_H
