// FlexRay schedule construction and response-time bounds.
//
// The static segment is TDMA: each communication cycle contains a fixed
// number of equal static slots; a frame is assigned a (slot, base cycle,
// repetition) triple where repetition is a power of two up to 64 — the
// frame is sent in its slot whenever cycle % repetition == base. Two frames
// may share a slot iff their (base, repetition) patterns never collide.
// This is the deterministic counterpart the industry moved to for
// safety-critical traffic; bench_flexray_static compares its
// latency/utilization against CAN for the same message set.
//
// The dynamic segment (net::FlexrayFabric simulates it) is a minislot
// scheme: after the static segment, a slot counter walks priority-ordered
// dynamic slot ids; an id with a pending frame occupies as many minislots
// as the frame needs (if it still fits in the cycle's budget), an idle id
// consumes exactly one. flexray_dynamic_hop packages the conservative
// worst-case bound as a path_rta fabric plugin: assuming every
// higher-priority id transmits its longest frame each cycle, a frame that
// just missed its decision point waits at most one full cycle, then the
// next static segment, then the higher-priority run-up and its own slot:
//
//   R = cycle_length + static_segment
//       + (higher_prio_minislots + slot_minislots) * minislot
//
// and the frame is guaranteed to transmit at all only if that run-up plus
// its own need fits the budget every cycle
// (higher_prio_minislots + slot_minislots <= minislots).
#ifndef ACES_SCHED_FLEXRAY_H
#define ACES_SCHED_FLEXRAY_H

#include <string>
#include <vector>

#include "sched/can_rta.h"
#include "sim/event_queue.h"

namespace aces::sched {

struct FlexrayConfig {
  sim::SimTime cycle_length = 5 * sim::kMillisecond;
  unsigned static_slots = 30;
  sim::SimTime slot_length = 100 * sim::kMicrosecond;  // <= cycle/slots
};

struct FlexrayFrame {
  std::string name;
  int node = 0;
  // Desired period; rounded up to cycle * 2^k (k in 0..6).
  sim::SimTime period = 0;
};

struct FlexrayAssignment {
  int frame = -1;
  unsigned slot = 0;
  unsigned base_cycle = 0;
  unsigned repetition = 1;
  sim::SimTime worst_latency = 0;  // queue-at-worst-moment to slot end
};

struct FlexraySchedule {
  bool feasible = false;
  std::vector<FlexrayAssignment> assignments;
  double static_utilization = 0.0;  // fraction of slot-instances used

  [[nodiscard]] const FlexrayAssignment& of(int frame) const;
};

[[nodiscard]] FlexraySchedule build_static_schedule(
    const FlexrayConfig& config, const std::vector<FlexrayFrame>& frames);

// Worst-case queue-to-delivery bound for one frame of a FlexRay dynamic
// segment, packaged for path_rta (see the file comment for the formula).
// net::FlexrayFabric::dynamic_hop fills this from its registry; the struct
// stands alone so the analysis stays usable without a simulated fabric.
struct FlexrayDynHopParams {
  sim::SimTime cycle_length = 0;
  sim::SimTime static_segment = 0;  // offset of the dynamic segment start
  sim::SimTime minislot = 0;        // one minislot
  unsigned minislots = 0;           // dynamic-segment budget per cycle
  unsigned slot_minislots = 0;      // minislots the analyzed frame occupies
  // Worst-case run-up before the analyzed id's decision point: the
  // minislot cost of every assigned dynamic id of higher priority (all
  // assumed to transmit their longest frame every cycle) plus one idle
  // minislot per unassigned id below it.
  unsigned higher_prio_minislots = 0;
  sim::SimTime deadline = 0;  // hop-local queue-to-delivery deadline
};

// Builds a path_rta hop whose analysis plugin applies the dynamic-segment
// bound. The hop has no CAN message set; `gateway_latency` and `bus` mean
// exactly what they mean on CAN hops. The FlexRay bound carries no error
// model, so the faulted and fault-free passes coincide on this hop.
[[nodiscard]] PathHop flexray_dynamic_hop(const FlexrayDynHopParams& params,
                                          sim::SimTime gateway_latency = 0,
                                          int bus = -1);

}  // namespace aces::sched

#endif  // ACES_SCHED_FLEXRAY_H
