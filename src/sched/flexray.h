// FlexRay static-segment schedule construction (extension experiment E12).
//
// The static segment is TDMA: each communication cycle contains a fixed
// number of equal static slots; a frame is assigned a (slot, base cycle,
// repetition) triple where repetition is a power of two up to 64 — the
// frame is sent in its slot whenever cycle % repetition == base. Two frames
// may share a slot iff their (base, repetition) patterns never collide.
// This is the deterministic counterpart the industry moved to for
// safety-critical traffic; the bench compares its latency/utilization
// against CAN for the same message set.
#ifndef ACES_SCHED_FLEXRAY_H
#define ACES_SCHED_FLEXRAY_H

#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace aces::sched {

struct FlexrayConfig {
  sim::SimTime cycle_length = 5 * sim::kMillisecond;
  unsigned static_slots = 30;
  sim::SimTime slot_length = 100 * sim::kMicrosecond;  // <= cycle/slots
};

struct FlexrayFrame {
  std::string name;
  int node = 0;
  // Desired period; rounded up to cycle * 2^k (k in 0..6).
  sim::SimTime period = 0;
};

struct FlexrayAssignment {
  int frame = -1;
  unsigned slot = 0;
  unsigned base_cycle = 0;
  unsigned repetition = 1;
  sim::SimTime worst_latency = 0;  // queue-at-worst-moment to slot end
};

struct FlexraySchedule {
  bool feasible = false;
  std::vector<FlexrayAssignment> assignments;
  double static_utilization = 0.0;  // fraction of slot-instances used

  [[nodiscard]] const FlexrayAssignment& of(int frame) const;
};

[[nodiscard]] FlexraySchedule build_static_schedule(
    const FlexrayConfig& config, const std::vector<FlexrayFrame>& frames);

// Runtime static-segment player: replays a feasible schedule on the shared
// co-simulation time base. A pure event-queue participant — TDMA slot
// boundaries, CAN traffic, kernel models and bound cycle-accurate Systems
// all interleave under the one deterministic scheduler.
class FlexrayStaticDriver {
 public:
  // Invoked at the start of each slot instance owned by `frame`.
  using SlotFn = std::function<void(const FlexrayFrame& frame,
                                    const FlexrayAssignment& assignment,
                                    sim::SimTime slot_start)>;

  // `schedule` must be feasible and must have been built from `frames`.
  FlexrayStaticDriver(sim::EventQueue& queue, FlexrayConfig config,
                      std::vector<FlexrayFrame> frames,
                      FlexraySchedule schedule);
  FlexrayStaticDriver(sim::Simulation& sim, FlexrayConfig config,
                      std::vector<FlexrayFrame> frames,
                      FlexraySchedule schedule)
      : FlexrayStaticDriver(sim.queue(), std::move(config), std::move(frames),
                            std::move(schedule)) {}

  // Pinned: armed queue events capture `this`.
  FlexrayStaticDriver(const FlexrayStaticDriver&) = delete;
  FlexrayStaticDriver& operator=(const FlexrayStaticDriver&) = delete;

  // Arms communication cycle 0 at the current instant; slots fire forever
  // (every cycle_length) until the owning queue stops being run.
  void start(SlotFn on_slot);

  [[nodiscard]] unsigned cycle() const noexcept { return cycle_; }
  [[nodiscard]] std::uint64_t slots_played() const noexcept {
    return slots_played_;
  }

 private:
  void arm_cycle(sim::SimTime cycle_start);

  sim::EventQueue& queue_;
  FlexrayConfig config_;
  std::vector<FlexrayFrame> frames_;
  FlexraySchedule schedule_;
  SlotFn on_slot_;
  unsigned cycle_ = 0;  // communication cycle counter, wraps at 64
  std::uint64_t slots_played_ = 0;
};

}  // namespace aces::sched

#endif  // ACES_SCHED_FLEXRAY_H
